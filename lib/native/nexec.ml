(** The native IR executor: runs compiled IR on the flat memory with C's
    *undefined* error semantics.  Running it bare models "Clang -O0/-O3 +
    run the binary"; running it with the ASan or Memcheck hooks installed
    models the corresponding sanitizer.

    The executor collects a coarse execution profile (dynamic operation
    counts and libc call counts) that the JIT/perf cost model consumes. *)

type profile = {
  mutable n_ops : int;
  mutable n_fp : int;
  mutable n_mem : int;
  mutable n_checks : int;  (** sanitizer checks executed *)
  mutable n_calls : int;
  mutable n_branches : int;
  libc_calls : (string, int) Hashtbl.t;
  mutable n_allocs : int;
  mutable n_alloc_bytes : int;
  mutable n_blocks_translated : int;  (** distinct basic blocks executed *)
}

let fresh_profile () =
  {
    n_ops = 0;
    n_fp = 0;
    n_mem = 0;
    n_checks = 0;
    n_calls = 0;
    n_branches = 0;
    libc_calls = Hashtbl.create 32;
    n_allocs = 0;
    n_alloc_bytes = 0;
    n_blocks_translated = 0;
  }

exception Step_limit_exceeded

type pblock = {
  pb_label : string;
  pb_instrs : Instr.instr array;
  pb_term : Instr.terminator;
  mutable pb_seen : bool;  (** for the translation-count profile *)
}

type pfunc = {
  pf_ir : Irfunc.t;
  pf_blocks : pblock array;
  pf_index : (string, int) Hashtbl.t;
  pf_nregs : int;
}

type state = {
  m : Irmod.t;
  mem : Mem.t;
  alloc : Alloc.t;
  hooks : Hooks.t;
  funcs : (string, pfunc) Hashtbl.t;
  globals : (string, int64) Hashtbl.t;
  func_addrs : (string, int64) Hashtbl.t;
  addr_funcs : (int64, string) Hashtbl.t;
  libc : Nlibc.ctx;
  mutable sp : int;
  mutable steps : int;
  step_limit : int;
  mutable depth : int;
  profile : profile;
}

(* ------------------------------------------------------------------ *)
(* Setup                                                               *)
(* ------------------------------------------------------------------ *)

let prepare_func (f : Irfunc.t) : pfunc =
  let blocks =
    Array.of_list
      (List.map
         (fun (b : Irfunc.block) ->
           {
             pb_label = b.Irfunc.label;
             pb_instrs = Array.of_list b.Irfunc.instrs;
             pb_term = b.Irfunc.term;
             pb_seen = false;
           })
         f.Irfunc.blocks)
  in
  let index = Hashtbl.create (Array.length blocks) in
  Array.iteri (fun i b -> Hashtbl.replace index b.pb_label i) blocks;
  { pf_ir = f; pf_blocks = blocks; pf_index = index; pf_nregs = f.Irfunc.next_reg }

let func_addr st name =
  match Hashtbl.find_opt st.func_addrs name with
  | Some a -> a
  | None ->
    let a = Int64.of_int (Mem.func_base + (16 * Hashtbl.length st.func_addrs)) in
    Hashtbl.replace st.func_addrs name a;
    Hashtbl.replace st.addr_funcs a name;
    a

let rec write_ginit st (gty : Irtype.mty) (addr : int64) (init : Irmod.ginit) =
  match (init, gty) with
  | Irmod.Gzero, _ -> ()
  | Irmod.Gint v, Irtype.MScalar s ->
    if Irtype.is_float_scalar s then
      Mem.store_float st.mem addr ~size:(Irtype.scalar_size s) (Int64.to_float v)
    else Mem.store_int st.mem addr ~size:(Irtype.scalar_size s) v
  | Irmod.Gint v, _ -> Mem.store_int st.mem addr ~size:8 v
  | Irmod.Gfloat f, Irtype.MScalar s ->
    Mem.store_float st.mem addr ~size:(Irtype.scalar_size s) f
  | Irmod.Gfloat f, _ -> Mem.store_float st.mem addr ~size:8 f
  | Irmod.Gstring s, _ -> Mem.write_string st.mem addr s
  | Irmod.Garray items, Irtype.MArray (elem, _) ->
    let esize = Irtype.mty_size elem in
    List.iteri
      (fun i item ->
        write_ginit st elem (Int64.add addr (Int64.of_int (i * esize))) item)
      items
  | Irmod.Gstruct_init items, Irtype.MStruct s ->
    List.iteri
      (fun i item ->
        if i < List.length s.Irtype.s_fields then begin
          let f = List.nth s.Irtype.s_fields i in
          write_ginit st f.Irtype.mf_ty
            (Int64.add addr (Int64.of_int f.Irtype.mf_off))
            item
        end)
      items
  | Irmod.Gglobal_addr name, _ ->
    Mem.store_int st.mem addr ~size:8 (Hashtbl.find st.globals name)
  | Irmod.Gfunc_addr name, _ ->
    Mem.store_int st.mem addr ~size:8 (func_addr st name)
  | (Irmod.Garray _ | Irmod.Gstruct_init _), _ ->
    failwith "nexec: malformed global initializer"

(** Lay out globals; [global_gap] is the engine's redzone spacing (0 for
    plain native, 32 under ASan with -fno-common). *)
let layout_globals st ~global_gap =
  List.iter
    (fun (g : Irmod.global) ->
      let size = Irtype.mty_size g.Irmod.g_ty in
      let align = Irtype.mty_align g.Irmod.g_ty in
      let addr = Mem.alloc_global st.mem ~size ~align ~gap:global_gap in
      Hashtbl.replace st.globals g.Irmod.g_name addr;
      st.hooks.Hooks.on_global addr size
        ~zero_init:(g.Irmod.g_init = Irmod.Gzero))
    st.m.Irmod.globals;
  List.iter
    (fun (g : Irmod.global) ->
      write_ginit st g.Irmod.g_ty (Hashtbl.find st.globals g.Irmod.g_name)
        g.Irmod.g_init)
    st.m.Irmod.globals

(** Set up argv/envp above the stack, as the kernel would, before any
    instrumented code runs: argv[argc] = NULL, and the envp array follows
    argv directly, so reading argv[argc+1+k] yields environment-variable
    pointers (the secret-leak scenario of paper case study 1). *)
let setup_argv st (argv : string list) (envp : string list) : int64 * int64 =
  let all = argv @ envp in
  let string_addrs =
    List.map
      (fun s ->
        let a = Mem.alloc_argv_area st.mem ~size:(String.length s + 1) in
        Mem.write_string st.mem a (s ^ "\000");
        a)
      all
  in
  let argc = List.length argv in
  let total_ptrs = argc + 1 + List.length envp + 1 in
  let arr = Mem.alloc_argv_area st.mem ~size:(total_ptrs * 8) in
  let rec place i addrs k =
    match addrs with
    | [] -> ()
    | a :: rest ->
      (* argv entries, then NULL, then envp entries, then NULL *)
      let slot = if k < argc then k else k + 1 in
      Mem.store_int st.mem (Int64.add arr (Int64.of_int (slot * 8))) ~size:8 a;
      place i rest (k + 1)
  in
  place 0 string_addrs 0;
  (Int64.of_int argc, arr)

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

open Nvalue

let eval_value st (regs : Nvalue.t array) (v : Instr.value) : Nvalue.t =
  match v with
  | Instr.Reg r -> regs.(r)
  | Instr.ImmInt (x, s) -> NI (Irtype.normalize_int s x, true)
  | Instr.ImmFloat (f, _) -> NF (f, true)
  | Instr.Null -> NI (0L, true)
  | Instr.GlobalAddr name -> NI (Hashtbl.find st.globals name, true)
  | Instr.FuncAddr name -> NI (func_addr st name, true)

let exec_binop (op : Instr.binop) (s : Irtype.scalar) (a : Nvalue.t)
    (b : Nvalue.t) : Nvalue.t =
  let d = defined a && defined b in
  match op with
  | Instr.FAdd -> NF (Irtype.round_result s (as_float a +. as_float b), d)
  | Instr.FSub -> NF (Irtype.round_result s (as_float a -. as_float b), d)
  | Instr.FMul -> NF (Irtype.round_result s (as_float a *. as_float b), d)
  | Instr.FDiv -> NF (Irtype.round_result s (as_float a /. as_float b), d)
  | _ ->
    let x = as_int a and y = as_int b in
    let div_check () = if y = 0L then raise (Native_trap "SIGFPE") in
    let r =
      match op with
      | Instr.Add -> Int64.add x y
      | Instr.Sub -> Int64.sub x y
      | Instr.Mul -> Int64.mul x y
      | Instr.Sdiv ->
        div_check ();
        Int64.div x y
      | Instr.Udiv ->
        div_check ();
        Int64.unsigned_div (Irtype.unsigned_of s x) (Irtype.unsigned_of s y)
      | Instr.Srem ->
        div_check ();
        Int64.rem x y
      | Instr.Urem ->
        div_check ();
        Int64.unsigned_rem (Irtype.unsigned_of s x) (Irtype.unsigned_of s y)
      | Instr.Shl -> Int64.shift_left x (Int64.to_int y land 63)
      | Instr.Lshr ->
        Int64.shift_right_logical (Irtype.unsigned_of s x) (Int64.to_int y land 63)
      | Instr.Ashr -> Int64.shift_right x (Int64.to_int y land 63)
      | Instr.And -> Int64.logand x y
      | Instr.Or -> Int64.logor x y
      | Instr.Xor -> Int64.logxor x y
      | Instr.FAdd | Instr.FSub | Instr.FMul | Instr.FDiv -> assert false
    in
    NI (Irtype.normalize_int s r, d)

let exec_icmp (op : Instr.icmp) (s : Irtype.scalar) (a : Nvalue.t) (b : Nvalue.t)
    : Nvalue.t =
  let d = defined a && defined b in
  let x = as_int a and y = as_int b in
  let r =
    match op with
    | Instr.Ieq -> x = y
    | Instr.Ine -> x <> y
    | Instr.Islt -> x < y
    | Instr.Isle -> x <= y
    | Instr.Isgt -> x > y
    | Instr.Isge -> x >= y
    | Instr.Iult ->
      Int64.unsigned_compare (Irtype.unsigned_of s x) (Irtype.unsigned_of s y) < 0
    | Instr.Iule ->
      Int64.unsigned_compare (Irtype.unsigned_of s x) (Irtype.unsigned_of s y) <= 0
    | Instr.Iugt ->
      Int64.unsigned_compare (Irtype.unsigned_of s x) (Irtype.unsigned_of s y) > 0
    | Instr.Iuge ->
      Int64.unsigned_compare (Irtype.unsigned_of s x) (Irtype.unsigned_of s y) >= 0
  in
  NI ((if r then 1L else 0L), d)

let exec_fcmp (op : Instr.fcmp) (a : Nvalue.t) (b : Nvalue.t) : Nvalue.t =
  let d = defined a && defined b in
  let x = as_float a and y = as_float b in
  let r =
    match op with
    | Instr.Feq -> x = y
    | Instr.Fne -> x <> y
    | Instr.Flt -> x < y
    | Instr.Fle -> x <= y
    | Instr.Fgt -> x > y
    | Instr.Fge -> x >= y
  in
  NI ((if r then 1L else 0L), d)

let exec_cast (op : Instr.cast) (from : Irtype.scalar) (into : Irtype.scalar)
    (v : Nvalue.t) : Nvalue.t =
  let d = defined v in
  match op with
  | Instr.Trunc | Instr.Ptrtoint | Instr.Inttoptr ->
    NI (Irtype.normalize_int into (as_int v), d)
  | Instr.Zext -> NI (Irtype.normalize_int into (Irtype.unsigned_of from (as_int v)), d)
  | Instr.Sext -> NI (Irtype.normalize_int into (as_int v), d)
  | Instr.Fptrunc -> NF (Irtype.round_to_f32 (as_float v), d)
  | Instr.Fpext -> NF (as_float v, d)
  | Instr.Fptosi | Instr.Fptoui ->
    NI (Irtype.normalize_int into (Irtype.float_to_int (as_float v)), d)
  | Instr.Sitofp -> NF (Irtype.round_result into (Int64.to_float (as_int v)), d)
  | Instr.Uitofp ->
    let u = Irtype.unsigned_of from (as_int v) in
    let f =
      if u >= 0L then Int64.to_float u
      else Int64.to_float u +. 18446744073709551616.0
    in
    NF (Irtype.round_result into f, d)
  | Instr.Bitcast -> begin
    match (Irtype.is_float_scalar from, Irtype.is_float_scalar into) with
    | true, false ->
      let f = as_float v in
      let bits =
        if into = Irtype.I32 then Int64.of_int32 (Int32.bits_of_float f)
        else Int64.bits_of_float f
      in
      NI (Irtype.normalize_int into bits, d)
    | false, true ->
      let bits = as_int v in
      if into = Irtype.F32 then NF (Int32.float_of_bits (Int64.to_int32 bits), d)
      else NF (Int64.float_of_bits bits, d)
    | _ -> v
  end

type opclass = Cop | Cfp | Cmem | Ccheck

let charge st (cls : opclass) =
  st.steps <- st.steps + 1;
  (match cls with
  | Cmem -> st.profile.n_mem <- st.profile.n_mem + 1
  | Cfp -> st.profile.n_fp <- st.profile.n_fp + 1
  | Ccheck -> st.profile.n_checks <- st.profile.n_checks + 1
  | Cop -> st.profile.n_ops <- st.profile.n_ops + 1);
  if st.steps > st.step_limit then raise Step_limit_exceeded

let rec call_function st (pf : pfunc) (args : Nvalue.t list) : Nvalue.t option =
  st.depth <- st.depth + 1;
  if st.depth > 8192 then raise (Mem.Segfault (Int64.of_int st.sp));
  let saved_sp = st.sp in
  let regs = Array.make (max pf.pf_nregs 1) Nvalue.zero in
  let rec bind params args =
    match (params, args) with
    | (r, _) :: ps, a :: rest ->
      regs.(r) <- a;
      bind ps rest
    | _, _ -> ()
  in
  bind pf.pf_ir.Irfunc.params args;
  let result = exec_block st pf regs 0 "" in
  st.hooks.Hooks.on_frame_exit ~lo:(Int64.of_int st.sp)
    ~hi:(Int64.of_int saved_sp);
  st.sp <- saved_sp;
  st.depth <- st.depth - 1;
  result

and exec_block st (pf : pfunc) (regs : Nvalue.t array) (block_idx : int)
    (prev_label : string) : Nvalue.t option =
  let blk = pf.pf_blocks.(block_idx) in
  if not blk.pb_seen then begin
    blk.pb_seen <- true;
    st.profile.n_blocks_translated <- st.profile.n_blocks_translated + 1
  end;
  let n = Array.length blk.pb_instrs in
  let ev v = eval_value st regs v in
  let rec run i =
    if i >= n then exec_term st pf regs blk prev_label
    else begin
      (match blk.pb_instrs.(i) with
      | Instr.Alloca (r, mty) ->
        charge st Cop;
        let size = Irtype.mty_size mty in
        let pad = st.hooks.Hooks.alloca_padding in
        (* Natural alignment, like a compiler's frame layout: char arrays
           pack byte-adjacent (no artificial gaps of "undefined" slack);
           redzone padding (ASan) forces wider alignment. *)
        let align = if pad > 0 then 16 else max (Irtype.mty_align mty) 1 in
        st.sp <- (st.sp - (size + (2 * pad))) land lnot (align - 1);
        if st.sp < Mem.stack_limit then
          raise (Mem.Segfault (Int64.of_int st.sp));
        let body = Int64.of_int (st.sp + pad) in
        st.hooks.Hooks.on_alloca body size;
        regs.(r) <- NI (body, true)
      | Instr.Load (r, s, p) ->
        charge st Cmem;
        let addr = as_int (ev p) in
        let size = Irtype.scalar_size s in
        st.hooks.Hooks.on_load addr size;
        let d = st.hooks.Hooks.load_defined addr size in
        let v =
          match s with
          | Irtype.F32 | Irtype.F64 -> NF (Mem.load_float st.mem addr ~size, d)
          | _ -> NI (Irtype.normalize_int s (Mem.load_int st.mem addr ~size), d)
        in
        regs.(r) <- v
      | Instr.Store (s, v, p) ->
        charge st Cmem;
        let addr = as_int (ev p) in
        let size = Irtype.scalar_size s in
        let value = ev v in
        st.hooks.Hooks.on_store addr size (defined value);
        (match s with
        | Irtype.F32 | Irtype.F64 ->
          Mem.store_float st.mem addr ~size (as_float value)
        | _ -> Mem.store_int st.mem addr ~size (as_int value))
      | Instr.Gep (r, base, idx) ->
        charge st Cop;
        let bv = ev base in
        let delta =
          List.fold_left
            (fun acc gi ->
              match gi with
              | Instr.Gfield (_, off) -> Int64.add acc (Int64.of_int off)
              | Instr.Gindex (v, stride) ->
                Int64.add acc (Int64.mul (as_int (ev v)) (Int64.of_int stride)))
            0L idx
        in
        regs.(r) <- NI (Int64.add (as_int bv) delta, defined bv)
      | Instr.Binop (r, op, s, a, b) ->
        charge st
          (match op with
          | Instr.FAdd | Instr.FSub | Instr.FMul | Instr.FDiv -> Cfp
          | _ -> Cop);
        regs.(r) <- exec_binop op s (ev a) (ev b)
      | Instr.Icmp (r, op, s, a, b) ->
        charge st Cop;
        regs.(r) <- exec_icmp op s (ev a) (ev b)
      | Instr.Fcmp (r, op, _, a, b) ->
        charge st Cfp;
        regs.(r) <- exec_fcmp op (ev a) (ev b)
      | Instr.Cast (r, op, from, into, v) ->
        charge st Cop;
        regs.(r) <- exec_cast op from into (ev v)
      | Instr.Select (r, _, c, a, b) ->
        charge st Cop;
        let cv = ev c in
        if not (defined cv) then
          st.hooks.Hooks.on_undef_use "select on uninitialised value";
        regs.(r) <- (if as_int cv <> 0L then ev a else ev b)
      | Instr.Phi _ ->
        (* LLVM phis are a parallel copy: the head of the maximal run of
           phis is evaluated in full before any destination is written,
           so same-block phis referencing each other read the old
           values.  Later phis of the run are no-ops (handled here). *)
        let is_phi k =
          match blk.pb_instrs.(k) with Instr.Phi _ -> true | _ -> false
        in
        if i = 0 || not (is_phi (i - 1)) then begin
          let stop = ref i in
          while !stop < n && is_phi !stop do incr stop done;
          let stop = !stop in
          let vals = Array.make (stop - i) Nvalue.zero in
          for k = i to stop - 1 do
            match blk.pb_instrs.(k) with
            | Instr.Phi (_, _, incoming) ->
              charge st Cop;
              (match List.assoc_opt prev_label incoming with
              | Some v -> vals.(k - i) <- ev v
              | None -> failwith "nexec: phi without incoming edge")
            | _ -> assert false
          done;
          for k = i to stop - 1 do
            match blk.pb_instrs.(k) with
            | Instr.Phi (r, _, _) -> regs.(r) <- vals.(k - i)
            | _ -> assert false
          done
        end
      | Instr.Sancheck (kind, p, size) ->
        charge st Ccheck;
        st.hooks.Hooks.on_sancheck kind (as_int (ev p)) size
      (* provenance metadata: free, so native cycle counts are unchanged *)
      | Instr.Srcloc _ -> ()
      | Instr.Call (r, _, callee, cargs) ->
        charge st Cop;
        st.profile.n_calls <- st.profile.n_calls + 1;
        let argv = List.map (fun (_, v) -> ev v) cargs in
        let result =
          match callee with
          | Instr.Direct name -> dispatch st name argv
          | Instr.Indirect v -> begin
            let addr = as_int (ev v) in
            match Hashtbl.find_opt st.addr_funcs addr with
            | Some name -> dispatch st name argv
            | None -> raise (Mem.Segfault addr)
          end
        in
        (match (r, result) with
        | Some r, Some v -> regs.(r) <- v
        | Some r, None -> regs.(r) <- Nvalue.zero
        | None, _ -> ()));
      run (i + 1)
    end
  in
  run 0

and dispatch st name argv : Nvalue.t option =
  match Hashtbl.find_opt st.funcs name with
  | Some pf -> call_function st pf argv
  | None ->
    (match Hashtbl.find_opt st.profile.libc_calls name with
    | Some c -> Hashtbl.replace st.profile.libc_calls name (c + 1)
    | None -> Hashtbl.replace st.profile.libc_calls name 1);
    (match name with
    | "malloc" | "calloc" | "realloc" ->
      st.profile.n_allocs <- st.profile.n_allocs + 1;
      st.profile.n_alloc_bytes <-
        st.profile.n_alloc_bytes
        + Int64.to_int (Nvalue.as_int (List.nth argv (if name = "realloc" then 1 else 0)))
    | _ -> ());
    Nlibc.call st.libc name argv

and exec_term st (pf : pfunc) (regs : Nvalue.t array) (blk : pblock)
    (_prev : string) : Nvalue.t option =
  charge st Cop;
  let ev v = eval_value st regs v in
  match blk.pb_term with
  | Instr.Ret (Some (_, v)) -> Some (ev v)
  | Instr.Ret None -> None
  | Instr.Br l -> jump st pf regs blk.pb_label l
  | Instr.Condbr (c, a, b) ->
    st.profile.n_branches <- st.profile.n_branches + 1;
    let cv = ev c in
    if not (defined cv) then
      st.hooks.Hooks.on_undef_use
        "Conditional jump or move depends on uninitialised value(s)";
    jump st pf regs blk.pb_label (if as_int cv <> 0L then a else b)
  | Instr.Switch (v, cases, default) ->
    st.profile.n_branches <- st.profile.n_branches + 1;
    let x = as_int (ev v) in
    let target =
      match List.find_opt (fun (k, _) -> k = x) cases with
      | Some (_, l) -> l
      | None -> default
    in
    jump st pf regs blk.pb_label target
  | Instr.Unreachable -> raise (Native_trap "SIGILL (unreachable)")

and jump st pf regs from_label target =
  match Hashtbl.find_opt pf.pf_index target with
  | Some idx -> exec_block st pf regs idx from_label
  | None -> failwith ("nexec: unknown block " ^ target)

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type crash = Segv of int64 | Trap of string

type run_result = {
  exit_code : int;
  output : string;
  crash : crash option;
  report : Hooks.report option;
  steps : int;
  run_profile : profile;
  timed_out : bool;
}

let default_envp =
  [
    "PATH=/usr/local/bin:/usr/bin";
    "SECRET_TOKEN=hunter2";
    "HOME=/root";
    "USER=root";
    "SHELL=/bin/bash";
    "LANG=en_US.UTF-8";
    "TERM=xterm-256color";
    "API_KEY=sk-deadbeef42";
  ]

let create ?(hooks = Hooks.default ~tool_name:"native") ?(global_gap = 0)
    ?(step_limit = 500_000_000) ?(input = "") ?mem ?alloc (m : Irmod.t) : state =
  let mem = match mem with Some m -> m | None -> Mem.create () in
  let alloc = match alloc with Some a -> a | None -> Alloc.create mem in
  let profile = fresh_profile () in
  let rec st =
    lazy
      (let libc =
         {
           Nlibc.mem;
           alloc;
           hooks;
           out = Buffer.create 1024;
           input;
           input_pos = 0;
           strtok_save = 0L;
           rand_state = 42L;
           call_indirect =
             (fun addr args ->
               let s = Lazy.force st in
               match Hashtbl.find_opt s.addr_funcs addr with
               | Some name -> dispatch s name args
               | None -> raise (Mem.Segfault addr));
           malloc =
             (fun size ->
               match hooks.Hooks.malloc with
               | Some f -> f size
               | None -> Alloc.malloc alloc size);
           free =
             (fun p ->
               match hooks.Hooks.free with
               | Some f -> f p
               | None -> ignore (Alloc.free alloc p));
           libc_call_count = 0;
         }
       in
       {
         m;
         mem;
         alloc;
         hooks;
         funcs = Hashtbl.create 64;
         globals = Hashtbl.create 64;
         func_addrs = Hashtbl.create 64;
         addr_funcs = Hashtbl.create 64;
         libc;
         sp = Mem.stack_top;
         steps = 0;
         step_limit;
         depth = 0;
         profile;
       })
  in
  let st = Lazy.force st in
  List.iter
    (fun f -> Hashtbl.replace st.funcs f.Irfunc.name (prepare_func f))
    m.Irmod.funcs;
  layout_globals st ~global_gap;
  st

let run ?(argv = [ "program" ]) ?(envp = default_envp) (st : state) :
    run_result =
  let finish ?(code = 0) ?crash ?report ~timed_out () =
    {
      exit_code = code;
      output = Buffer.contents st.libc.Nlibc.out;
      crash;
      report;
      steps = st.steps;
      run_profile = st.profile;
      timed_out;
    }
  in
  match Hashtbl.find_opt st.funcs "main" with
  | None -> failwith "nexec: program has no main"
  | Some main -> begin
    let vargc, argv_addr = setup_argv st argv envp in
    let args =
      if List.length main.pf_ir.Irfunc.params >= 2 then
        [ Nvalue.int_ vargc; Nvalue.int_ argv_addr ]
      else []
    in
    try
      let r = call_function st main args in
      let code =
        match r with
        | Some v -> Int64.to_int (Nvalue.as_int v) land 0xff
        | None -> 0
      in
      finish ~code ~timed_out:false ()
    with
    | Nvalue.Prog_exit code -> finish ~code ~timed_out:false ()
    | Mem.Segfault addr -> finish ~code:139 ~crash:(Segv addr) ~timed_out:false ()
    | Nvalue.Native_trap name -> finish ~code:132 ~crash:(Trap name) ~timed_out:false ()
    | Hooks.Sanitizer_report r -> finish ~code:1 ~report:r ~timed_out:false ()
    | Step_limit_exceeded -> finish ~code:255 ~timed_out:true ()
  end
