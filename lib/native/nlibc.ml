(** The "precompiled system libc" of the native engines.

    These functions are implemented in OCaml and operate directly on the
    flat memory — the analogue of the optimized binary libc a real
    process links against.  Crucially they are *uninstrumented*: the
    sanitizer simulators only see what their interceptors check
    ([Hooks.intercept]), which is exactly the paper's P4: a missing or
    incomplete interceptor means a bug inside a libc call goes unnoticed.

    [strlen] is deliberately word-wise (reads 8 bytes at a time), like
    production libcs — the pattern that forces sanitizers to special-case
    libc internals. *)

type ctx = {
  mem : Mem.t;
  alloc : Alloc.t;
  hooks : Hooks.t;
  out : Buffer.t;
  mutable input : string;
  mutable input_pos : int;
  mutable strtok_save : int64;
  mutable rand_state : int64;
  call_indirect : int64 -> Nvalue.t list -> Nvalue.t option;
  malloc : int -> int64;
  free : int64 -> unit;
  mutable libc_call_count : int;
}

let garbage_arg_value = Int64.of_int (Mem.globals_base + 0x100)
(* What reading past the last variadic argument yields: junk that looks
   like a nearby address.  Deterministic, printable, does not crash. *)

let pop_arg args =
  match !args with
  | a :: rest ->
    args := rest;
    a
  | [] -> Nvalue.NI (garbage_arg_value, true)

let arg_addr v = Nvalue.as_int v


(* Hook-aware memory helpers: when the tool "sees" libc (binary
   instrumentation), every libc access goes through the A/V-bit hooks;
   otherwise libc runs dark (compile-time instrumentation). *)

let sees ctx = ctx.hooks.Hooks.sees_libc

let lc_load ctx a ~size =
  if sees ctx then ctx.hooks.Hooks.on_load a size;
  Mem.load_int ctx.mem a ~size

let lc_store ctx a ~size v =
  if sees ctx then ctx.hooks.Hooks.on_store a size true;
  Mem.store_int ctx.mem a ~size v

let lc_store_float ctx a ~size v =
  if sees ctx then ctx.hooks.Hooks.on_store a size true;
  Mem.store_float ctx.mem a ~size v

(* libc code branches on the bytes it reads (string scans, compares);
   when the tool tracks V bits, reading an undefined byte here is a
   "conditional jump depends on uninitialised value(s)" — how Memcheck
   indirectly catches some stack overreads (paper §4.1). *)
let byte_at ctx a =
  if sees ctx && not (ctx.hooks.Hooks.load_defined a 1) then
    ctx.hooks.Hooks.on_undef_use
      "Conditional jump or move depends on uninitialised value(s)";
  Int64.to_int (lc_load ctx a ~size:1)

let read_cstr ctx a =
  let buf = Buffer.create 16 in
  let rec go off =
    let c = byte_at ctx (Int64.add a (Int64.of_int off)) in
    if c <> 0 then begin
      Buffer.add_char buf (Char.chr c);
      go (off + 1)
    end
  in
  go 0;
  Buffer.contents buf

let write_str ctx a s =
  String.iteri
    (fun i c ->
      lc_store ctx (Int64.add a (Int64.of_int i)) ~size:1
        (Int64.of_int (Char.code c)))
    s

(* ---------------- string primitives on flat memory ---------------- *)

let rec cstrlen_bytewise ctx a n =
  if byte_at ctx (Int64.add a (Int64.of_int n)) = 0 then n
  else cstrlen_bytewise ctx a (n + 1)

(** Word-wise strlen, as in optimized libcs: loads 8 bytes at a time and
    looks for a zero byte, routinely reading past the terminator. *)
let cstrlen_wordwise ctx a =
  let rec words off =
    let w = Mem.load_int ctx.mem (Int64.add a (Int64.of_int off)) ~size:8 in
    (* The classic "has zero byte" bit trick. *)
    let low = Int64.sub w 0x0101010101010101L in
    let mask = Int64.logand low (Int64.logand (Int64.lognot w) 0x8080808080808080L) in
    if mask = 0L then words (off + 8)
    else begin
      let rec find i =
        if byte_at ctx (Int64.add a (Int64.of_int (off + i))) = 0 then off + i
        else find (i + 1)
      in
      find 0
    end
  in
  words 0

(** strlen as the engine sees it: the optimized word-wise version when
    libc runs dark; the tool's byte-wise replacement when the tool
    redirects string functions (Valgrind). *)
let cstrlen ctx a =
  if sees ctx then cstrlen_bytewise ctx a 0 else cstrlen_wordwise ctx a

let emit_string ctx s = Buffer.add_string ctx.out s

(* ---------------- input ---------------- *)

let read_char ctx =
  if ctx.input_pos < String.length ctx.input then begin
    let c = ctx.input.[ctx.input_pos] in
    ctx.input_pos <- ctx.input_pos + 1;
    Char.code c
  end
  else -1

let unread_char ctx c = if c >= 0 && ctx.input_pos > 0 then
    ctx.input_pos <- ctx.input_pos - 1

(* ---------------- printf engine ---------------- *)

type dest = To_stream | To_buffer of int64 ref

let emit_to ctx dest s =
  match dest with
  | To_stream -> emit_string ctx s
  | To_buffer cursor ->
    (* the sprintf interceptor validates the written range *)
    ctx.hooks.Hooks.intercept "__sprintf_write"
      [ !cursor; Int64.of_int (String.length s) ];
    write_str ctx !cursor s;
    cursor := Int64.add !cursor (Int64.of_int (String.length s))

let pad_num s ~width ~zero ~left =
  let n = width - String.length s in
  if n <= 0 then s
  else if left then s ^ String.make n ' '
  else if zero then
    if String.length s > 0 && (s.[0] = '-' || s.[0] = '+') then
      String.make 1 s.[0] ^ String.make n '0' ^ String.sub s 1 (String.length s - 1)
    else String.make n '0' ^ s
  else String.make n ' ' ^ s

let format_engine ctx dest (fmt : string) (args : Nvalue.t list) : int =
  let args = ref args in
  let count = ref 0 in
  let out s =
    count := !count + String.length s;
    emit_to ctx dest s
  in
  let n = String.length fmt in
  let i = ref 0 in
  while !i < n do
    let c = fmt.[!i] in
    if c <> '%' then begin
      out (String.make 1 c);
      incr i
    end
    else begin
      incr i;
      let left = ref false and zero = ref false in
      while
        !i < n && (fmt.[!i] = '-' || fmt.[!i] = '0' || fmt.[!i] = '+' || fmt.[!i] = ' ')
      do
        if fmt.[!i] = '-' then left := true;
        if fmt.[!i] = '0' then zero := true;
        incr i
      done;
      let width = ref 0 in
      while !i < n && fmt.[!i] >= '0' && fmt.[!i] <= '9' do
        width := (!width * 10) + (Char.code fmt.[!i] - 48);
        incr i
      done;
      let prec = ref (-1) in
      if !i < n && fmt.[!i] = '.' then begin
        incr i;
        prec := 0;
        while !i < n && fmt.[!i] >= '0' && fmt.[!i] <= '9' do
          prec := (!prec * 10) + (Char.code fmt.[!i] - 48);
          incr i
        done
      end;
      let longmod = ref false in
      while !i < n && (fmt.[!i] = 'l' || fmt.[!i] = 'z' || fmt.[!i] = 'h') do
        if fmt.[!i] = 'l' || fmt.[!i] = 'z' then longmod := true;
        incr i
      done;
      if !i < n then begin
        let conv = fmt.[!i] in
        incr i;
        (* without a length modifier the argument is a 32-bit int: mask
           for the unsigned conversions (the register image is
           sign-extended) *)
        let unsigned_arg v =
          let x = Nvalue.as_int v in
          if !longmod then x else Int64.logand x 0xFFFFFFFFL
        in
        let check_def v =
          if not (Nvalue.defined v) then
            ctx.hooks.Hooks.on_undef_use "use of uninitialised value in printf"
        in
        match conv with
        | '%' -> out "%"
        | 'd' | 'i' ->
          let v = pop_arg args in
          check_def v;
          out (pad_num (Int64.to_string (Nvalue.as_int v)) ~width:!width
                 ~zero:!zero ~left:!left)
        | 'u' ->
          let v = pop_arg args in
          check_def v;
          out (pad_num (Printf.sprintf "%Lu" (unsigned_arg v)) ~width:!width
                 ~zero:!zero ~left:!left)
        | 'x' ->
          let v = pop_arg args in
          check_def v;
          out (pad_num (Printf.sprintf "%Lx" (unsigned_arg v)) ~width:!width
                 ~zero:!zero ~left:!left)
        | 'X' ->
          let v = pop_arg args in
          check_def v;
          out (pad_num (Printf.sprintf "%LX" (unsigned_arg v)) ~width:!width
                 ~zero:!zero ~left:!left)
        | 'o' ->
          let v = pop_arg args in
          check_def v;
          out (pad_num (Printf.sprintf "%Lo" (unsigned_arg v)) ~width:!width
                 ~zero:!zero ~left:!left)
        | 'c' ->
          let v = pop_arg args in
          check_def v;
          out (String.make 1 (Char.chr (Int64.to_int (Nvalue.as_int v) land 0xff)))
        | 's' ->
          let v = pop_arg args in
          check_def v;
          let addr = Nvalue.as_int v in
          (* The printf interceptor checks only pointer arguments
             (paper case study 2); glibc prints "(null)" for NULL. *)
          if addr <> 0L then ctx.hooks.Hooks.intercept "__printf_str" [ addr ];
          let s = if addr = 0L then "(null)" else read_cstr ctx addr in
          let s =
            if !prec >= 0 && String.length s > !prec then String.sub s 0 !prec
            else s
          in
          out (pad_num s ~width:!width ~zero:false ~left:!left)
        | 'p' ->
          let v = pop_arg args in
          check_def v;
          out (Printf.sprintf "0x%Lx" (Nvalue.as_int v))
        | ('f' | 'F' | 'e' | 'E' | 'g' | 'G') as conv ->
          (* decimal rendering is delegated to the shared [Floatfmt] so
             the native model, the managed libc and the difftest
             reference agree on every float digit by construction
             (DESIGN.md §10) *)
          let v = pop_arg args in
          check_def v;
          out (pad_num (Floatfmt.format conv !prec (Nvalue.as_float v))
                 ~width:!width ~zero:!zero ~left:!left)
        | c -> out (Printf.sprintf "%%%c" c)
      end
    end
  done;
  (match dest with
  | To_buffer cursor -> lc_store ctx !cursor ~size:1 0L
  | To_stream -> ());
  !count

(* ---------------- scanf engine ---------------- *)

let scan_skip_space ctx =
  let rec go () =
    let c = read_char ctx in
    if c >= 0 && (c = 32 || c = 9 || c = 10 || c = 13) then go () else c
  in
  go ()

let scan_engine ctx (fmt : string) (args : Nvalue.t list) : int =
  let args = ref args in
  let assigned = ref 0 in
  let n = String.length fmt in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < n do
    let fc = fmt.[!i] in
    if fc = ' ' || fc = '\n' || fc = '\t' then begin
      let c = scan_skip_space ctx in
      unread_char ctx c;
      incr i
    end
    else if fc <> '%' then begin
      let c = read_char ctx in
      if c <> Char.code fc then begin
        unread_char ctx c;
        stop := true
      end
      else incr i
    end
    else begin
      incr i;
      let long = ref false in
      while !i < n && (fmt.[!i] = 'l' || fmt.[!i] = 'z' || fmt.[!i] = 'h') do
        if fmt.[!i] = 'l' || fmt.[!i] = 'z' then long := true;
        incr i
      done;
      if !i < n then begin
        let conv = fmt.[!i] in
        incr i;
        match conv with
        | 'd' | 'i' | 'u' -> begin
          let c = scan_skip_space ctx in
          let neg = c = Char.code '-' in
          let c = if neg || c = Char.code '+' then read_char ctx else c in
          if c < Char.code '0' || c > Char.code '9' then begin
            unread_char ctx c;
            stop := true
          end
          else begin
            let v = ref 0L in
            let c = ref c in
            while !c >= Char.code '0' && !c <= Char.code '9' do
              v := Int64.add (Int64.mul !v 10L) (Int64.of_int (!c - 48));
              c := read_char ctx
            done;
            unread_char ctx !c;
            let v = if neg then Int64.neg !v else !v in
            let dest = arg_addr (pop_arg args) in
            lc_store ctx dest ~size:(if !long then 8 else 4) v;
            incr assigned
          end
        end
        | 'f' | 'g' | 'e' -> begin
          let c = scan_skip_space ctx in
          let buf = Buffer.create 16 in
          let c = ref c in
          while
            !c >= 0
            && (let ch = Char.chr !c in
                (ch >= '0' && ch <= '9')
                || ch = '-' || ch = '+' || ch = '.' || ch = 'e' || ch = 'E')
          do
            Buffer.add_char buf (Char.chr !c);
            c := read_char ctx
          done;
          unread_char ctx !c;
          match float_of_string_opt (Buffer.contents buf) with
          | Some v ->
            let dest = arg_addr (pop_arg args) in
            lc_store_float ctx dest ~size:(if !long then 8 else 4) v;
            incr assigned
          | None -> stop := true
        end
        | 's' -> begin
          let c = scan_skip_space ctx in
          if c < 0 then stop := true
          else begin
            let dest = arg_addr (pop_arg args) in
            ctx.hooks.Hooks.intercept "__scanf_str" [ dest ];
            let c = ref c in
            let off = ref 0 in
            while !c >= 0 && !c <> 32 && !c <> 9 && !c <> 10 && !c <> 13 do
              lc_store ctx
                (Int64.add dest (Int64.of_int !off))
                ~size:1 (Int64.of_int !c);
              incr off;
              c := read_char ctx
            done;
            unread_char ctx !c;
            lc_store ctx (Int64.add dest (Int64.of_int !off)) ~size:1 0L;
            incr assigned
          end
        end
        | 'c' -> begin
          let c = read_char ctx in
          if c < 0 then stop := true
          else begin
            let dest = arg_addr (pop_arg args) in
            lc_store ctx dest ~size:1 (Int64.of_int c);
            incr assigned
          end
        end
        | _ -> stop := true
      end
    end
  done;
  !assigned

(* ---------------- dispatch ---------------- *)

exception Unknown_function of string

(** Execute libc function [name].  [args] follow the IR call; for
    variadic functions the fixed arguments come first. *)
let call (ctx : ctx) (name : string) (args : Nvalue.t list) : Nvalue.t option =
  ctx.libc_call_count <- ctx.libc_call_count + 1;
  let ai n = Nvalue.as_int (List.nth args n) in
  let af n = Nvalue.as_float (List.nth args n) in
  let ret_int v = Some (Nvalue.int_ v) in
  let ret_float v = Some (Nvalue.float_ v) in
  let intercept ptrs = ctx.hooks.Hooks.intercept name ptrs in
  match name with
  | "malloc" -> ret_int (ctx.malloc (Int64.to_int (ai 0)))
  | "calloc" ->
    let bytes = Int64.to_int (ai 0) * Int64.to_int (ai 1) in
    let p = ctx.malloc bytes in
    for i = 0 to bytes - 1 do
      lc_store ctx (Int64.add p (Int64.of_int i)) ~size:1 0L
    done;
    ret_int p
  | "realloc" ->
    let p = ai 0 in
    let size = Int64.to_int (ai 1) in
    if p = 0L then ret_int (ctx.malloc size)
    else begin
      let fresh = ctx.malloc size in
      let old_size =
        match ctx.hooks.Hooks.usable_size p with
        | Some s -> s
        | None -> begin
          match Alloc.block_status ctx.alloc p with
          | `Live s -> s
          | `Freed s -> s
          | `Unknown -> size
        end
      in
      for i = 0 to min size old_size - 1 do
        lc_store ctx
          (Int64.add fresh (Int64.of_int i))
          ~size:1
          (lc_load ctx (Int64.add p (Int64.of_int i)) ~size:1)
      done;
      ctx.free p;
      ret_int fresh
    end
  | "free" ->
    ctx.free (ai 0);
    None
  | "exit" -> raise (Nvalue.Prog_exit (Int64.to_int (ai 0)))
  | "abort" -> raise (Nvalue.Prog_exit 134)
  | "rand" ->
    ctx.rand_state <-
      Int64.add (Int64.mul ctx.rand_state 6364136223846793005L) 1442695040888963407L;
    ret_int (Int64.shift_right_logical ctx.rand_state 33)
  | "srand" ->
    ctx.rand_state <- ai 0;
    None
  | "abs" -> ret_int (Int64.abs (ai 0))
  | "labs" -> ret_int (Int64.abs (ai 0))
  | "atoi" | "atol" ->
    intercept [ ai 0 ];
    let s = read_cstr ctx (ai 0) in
    let v =
      try Int64.of_string (String.trim s)
      with _ -> (
        (* parse the leading integer prefix like atoi does *)
        let s = String.trim s in
        let buf = Buffer.create 8 in
        (try
           String.iteri
             (fun i c ->
               if (c = '-' || c = '+') && i = 0 then Buffer.add_char buf c
               else if c >= '0' && c <= '9' then Buffer.add_char buf c
               else raise Exit)
             s
         with Exit -> ());
        try Int64.of_string (Buffer.contents buf) with _ -> 0L)
    in
    ret_int v
  | "atof" ->
    intercept [ ai 0 ];
    let s = String.trim (read_cstr ctx (ai 0)) in
    let rec try_prefix k =
      if k = 0 then 0.0
      else
        match float_of_string_opt (String.sub s 0 k) with
        | Some f -> f
        | None -> try_prefix (k - 1)
    in
    ret_float (try_prefix (String.length s))
  | "strlen" ->
    intercept [ ai 0 ];
    ret_int (Int64.of_int (cstrlen ctx (ai 0)))
  | "strcpy" ->
    intercept [ ai 0; ai 1 ];
    let s = read_cstr ctx (ai 1) in
    write_str ctx (ai 0) (s ^ "\000");
    ret_int (ai 0)
  | "strncpy" ->
    intercept [ ai 0; ai 1; ai 2 ];
    let n = Int64.to_int (ai 2) in
    let s = read_cstr ctx (ai 1) in
    let copied = if String.length s > n then String.sub s 0 n else s in
    write_str ctx (ai 0) copied;
    for i = String.length copied to n - 1 do
      lc_store ctx (Int64.add (ai 0) (Int64.of_int i)) ~size:1 0L
    done;
    ret_int (ai 0)
  | "strcat" ->
    intercept [ ai 0; ai 1 ];
    let dst_len = cstrlen ctx (ai 0) in
    let s = read_cstr ctx (ai 1) in
    write_str ctx (Int64.add (ai 0) (Int64.of_int dst_len)) (s ^ "\000");
    ret_int (ai 0)
  | "strncat" ->
    intercept [ ai 0; ai 1 ];
    let n = Int64.to_int (ai 2) in
    let dst_len = cstrlen ctx (ai 0) in
    let s = read_cstr ctx (ai 1) in
    let copied = if String.length s > n then String.sub s 0 n else s in
    write_str ctx (Int64.add (ai 0) (Int64.of_int dst_len)) (copied ^ "\000");
    ret_int (ai 0)
  | "strcmp" ->
    intercept [ ai 0; ai 1 ];
    ret_int (Int64.of_int (compare (read_cstr ctx (ai 0)) (read_cstr ctx (ai 1))))
  | "strncmp" ->
    intercept [ ai 0; ai 1 ];
    let n = Int64.to_int (ai 2) in
    let cut s = if String.length s > n then String.sub s 0 n else s in
    ret_int
      (Int64.of_int (compare (cut (read_cstr ctx (ai 0))) (cut (read_cstr ctx (ai 1)))))
  | "strchr" ->
    intercept [ ai 0 ];
    let s = read_cstr ctx (ai 0) in
    let c = Char.chr (Int64.to_int (ai 1) land 0xff) in
    (match String.index_opt s c with
    | Some i -> ret_int (Int64.add (ai 0) (Int64.of_int i))
    | None ->
      if c = '\000' then ret_int (Int64.add (ai 0) (Int64.of_int (String.length s)))
      else ret_int 0L)
  | "strrchr" ->
    intercept [ ai 0 ];
    let s = read_cstr ctx (ai 0) in
    let c = Char.chr (Int64.to_int (ai 1) land 0xff) in
    (match String.rindex_opt s c with
    | Some i -> ret_int (Int64.add (ai 0) (Int64.of_int i))
    | None -> ret_int 0L)
  | "strstr" ->
    intercept [ ai 0; ai 1 ];
    let hay = read_cstr ctx (ai 0) in
    let needle = read_cstr ctx (ai 1) in
    let hl = String.length hay and nl = String.length needle in
    let rec find i =
      if i + nl > hl then ret_int 0L
      else if String.sub hay i nl = needle then
        ret_int (Int64.add (ai 0) (Int64.of_int i))
      else find (i + 1)
    in
    find 0
  | "strpbrk" ->
    intercept [ ai 0; ai 1 ];
    let str = read_cstr ctx (ai 0) in
    let accept = read_cstr ctx (ai 1) in
    let rec find i =
      if i >= String.length str then ret_int 0L
      else if String.contains accept str.[i] then
        ret_int (Int64.add (ai 0) (Int64.of_int i))
      else find (i + 1)
    in
    find 0
  | "memchr" ->
    intercept [ ai 0; ai 2 ];
    let n = Int64.to_int (ai 2) in
    let needle = Int64.to_int (ai 1) land 0xff in
    let rec find i =
      if i >= n then ret_int 0L
      else if byte_at ctx (Int64.add (ai 0) (Int64.of_int i)) = needle then
        ret_int (Int64.add (ai 0) (Int64.of_int i))
      else find (i + 1)
    in
    find 0
  | "strcasecmp" ->
    intercept [ ai 0; ai 1 ];
    let low s = String.lowercase_ascii s in
    ret_int
      (Int64.of_int
         (compare (low (read_cstr ctx (ai 0))) (low (read_cstr ctx (ai 1)))))
  | "strncasecmp" ->
    intercept [ ai 0; ai 1 ];
    let n = Int64.to_int (ai 2) in
    let cut s = if String.length s > n then String.sub s 0 n else s in
    let low s = String.lowercase_ascii (cut s) in
    ret_int
      (Int64.of_int
         (compare (low (read_cstr ctx (ai 0))) (low (read_cstr ctx (ai 1)))))
  | "strtol" -> begin
    intercept [ ai 0 ];
    let s0 = read_cstr ctx (ai 0) in
    let endp = ai 1 in
    let base0 = Int64.to_int (ai 2) in
    let n = String.length s0 in
    let i = ref 0 in
    while !i < n && (s0.[!i] = ' ' || s0.[!i] = '\t' || s0.[!i] = '\n') do incr i done;
    let neg = !i < n && s0.[!i] = '-' in
    if !i < n && (s0.[!i] = '-' || s0.[!i] = '+') then incr i;
    let base =
      if (base0 = 0 || base0 = 16) && !i + 1 < n && s0.[!i] = '0'
         && (s0.[!i + 1] = 'x' || s0.[!i + 1] = 'X')
      then begin
        i := !i + 2;
        16
      end
      else if base0 = 0 && !i < n && s0.[!i] = '0' then 8
      else if base0 = 0 then 10
      else base0
    in
    let value = ref 0L in
    let any = ref false in
    let continue_scan = ref true in
    while !continue_scan && !i < n do
      let c = Char.lowercase_ascii s0.[!i] in
      let digit =
        if c >= '0' && c <= '9' then Char.code c - 48
        else if c >= 'a' && c <= 'z' then Char.code c - 87
        else 99
      in
      if digit >= base then continue_scan := false
      else begin
        value := Int64.add (Int64.mul !value (Int64.of_int base)) (Int64.of_int digit);
        any := true;
        incr i
      end
    done;
    if endp <> 0L then begin
      let stop = if !any then !i else 0 in
      lc_store ctx endp ~size:8 (Int64.add (ai 0) (Int64.of_int stop))
    end;
    ret_int (if neg then Int64.neg !value else !value)
  end
  | "bsearch" -> begin
    let key = ai 0 in
    let base = ai 1 in
    let n = Int64.to_int (ai 2) in
    let size = Int64.to_int (ai 3) in
    let cmp = ai 4 in
    let elem i = Int64.add base (Int64.of_int (i * size)) in
    let compare_at i =
      match ctx.call_indirect cmp [ Nvalue.int_ key; Nvalue.int_ (elem i) ] with
      | Some v -> Int64.to_int (Nvalue.as_int v)
      | None -> 0
    in
    let rec search lo hi =
      if lo >= hi then ret_int 0L
      else begin
        let mid = lo + ((hi - lo) / 2) in
        let r = compare_at mid in
        if r = 0 then ret_int (elem mid)
        else if r < 0 then search lo mid
        else search (mid + 1) hi
      end
    in
    search 0 n
  end
  | "strdup" ->
    intercept [ ai 0 ];
    let s = read_cstr ctx (ai 0) in
    let p = ctx.malloc (String.length s + 1) in
    write_str ctx p (s ^ "\000");
    ret_int p
  | "strspn" | "strcspn" ->
    (* No interceptor for these in our ASan model either. *)
    let s_addr = ai 0 and set_addr = ai 1 in
    (* NOTE: reads the set string *without* NUL-termination guarantees —
       like the real thing, it just keeps reading memory. *)
    let set = read_cstr ctx set_addr in
    let accept = name = "strspn" in
    let rec go n =
      let c = byte_at ctx (Int64.add s_addr (Int64.of_int n)) in
      if c = 0 then n
      else begin
        let inside = String.contains set (Char.chr c) in
        if inside = accept then go (n + 1) else n
      end
    in
    ret_int (Int64.of_int (go 0))
  | "strtok" ->
    (* The tool decides whether it has an interceptor for strtok: the
       period-accurate ASan does NOT (the paper's case study 2) unless
       the later fix is switched on. *)
    intercept [ ai 0; ai 1 ];
    let s = ai 0 in
    let s = if s = 0L then ctx.strtok_save else s in
    if s = 0L then ret_int 0L
    else begin
      (* The delimiter string is read straight from memory; if it is not
         NUL-terminated this scans adjacent memory — silently. *)
      let delims = read_cstr ctx (ai 1) in
      let is_delim c = String.contains delims c in
      let rec skip a =
        let c = byte_at ctx a in
        if c <> 0 && is_delim (Char.chr c) then skip (Int64.add a 1L) else a
      in
      let start = skip s in
      if byte_at ctx start = 0 then begin
        ctx.strtok_save <- 0L;
        ret_int 0L
      end
      else begin
        let rec scan a =
          let c = byte_at ctx a in
          if c = 0 then begin
            ctx.strtok_save <- 0L;
            a
          end
          else if is_delim (Char.chr c) then begin
            lc_store ctx a ~size:1 0L;
            ctx.strtok_save <- Int64.add a 1L;
            a
          end
          else scan (Int64.add a 1L)
        in
        ignore (scan (Int64.add start 1L));
        ret_int start
      end
    end
  | "memcpy" | "memmove" ->
    intercept [ ai 0; ai 1; ai 2 ];
    let n = Int64.to_int (ai 2) in
    Mem.check ctx.mem (ai 0) n;
    Mem.check ctx.mem (ai 1) n;
    if sees ctx then begin
      (* memmove semantics via an OCaml-side copy of the source *)
      let tmp =
        String.init n (fun i ->
            Char.chr (Int64.to_int (lc_load ctx (Int64.add (ai 1) (Int64.of_int i)) ~size:1)))
      in
      write_str ctx (ai 0) tmp
    end
    else
      Bytes.blit ctx.mem.Mem.bytes (Int64.to_int (ai 1)) ctx.mem.Mem.bytes
        (Int64.to_int (ai 0)) n;
    ret_int (ai 0)
  | "memset" ->
    intercept [ ai 0; ai 2 ];
    let n = Int64.to_int (ai 2) in
    Mem.check ctx.mem (ai 0) n;
    if sees ctx then
      for i = 0 to n - 1 do
        lc_store ctx (Int64.add (ai 0) (Int64.of_int i)) ~size:1
          (Int64.logand (ai 1) 0xFFL)
      done
    else
      Bytes.fill ctx.mem.Mem.bytes (Int64.to_int (ai 0)) n
        (Char.chr (Int64.to_int (ai 1) land 0xff));
    ret_int (ai 0)
  | "memcmp" ->
    intercept [ ai 0; ai 1; ai 2 ];
    let n = Int64.to_int (ai 2) in
    let rec go i =
      if i >= n then 0
      else begin
        let a = byte_at ctx (Int64.add (ai 0) (Int64.of_int i)) in
        let b = byte_at ctx (Int64.add (ai 1) (Int64.of_int i)) in
        if a <> b then a - b else go (i + 1)
      end
    in
    ret_int (Int64.of_int (go 0))
  | "puts" ->
    intercept [ ai 0 ];
    emit_string ctx (read_cstr ctx (ai 0) ^ "\n");
    ret_int 0L
  | "putchar" ->
    Buffer.add_char ctx.out (Char.chr (Int64.to_int (ai 0) land 0xff));
    ret_int (ai 0)
  | "fputc" ->
    Buffer.add_char ctx.out (Char.chr (Int64.to_int (ai 0) land 0xff));
    ret_int (ai 0)
  | "fputs" ->
    intercept [ ai 0 ];
    emit_string ctx (read_cstr ctx (ai 0));
    ret_int 0L
  | "getchar" -> ret_int (Int64.of_int (read_char ctx))
  | "fgetc" -> ret_int (Int64.of_int (read_char ctx))
  | "fgets" -> begin
    intercept [ ai 0; ai 1 ];
    let buf = ai 0 in
    let n = Int64.to_int (ai 1) in
    let rec go i =
      if i >= n - 1 then i
      else begin
        let c = read_char ctx in
        if c < 0 then i
        else begin
          lc_store ctx (Int64.add buf (Int64.of_int i)) ~size:1
            (Int64.of_int c);
          if c = Char.code '\n' then i + 1 else go (i + 1)
        end
      end
    in
    let written = go 0 in
    if written = 0 then ret_int 0L
    else begin
      lc_store ctx (Int64.add buf (Int64.of_int written)) ~size:1 0L;
      ret_int buf
    end
  end
  | "printf" ->
    let fmt = read_cstr ctx (ai 0) in
    ret_int (Int64.of_int (format_engine ctx To_stream fmt (List.tl args)))
  | "fprintf" ->
    let fmt = read_cstr ctx (ai 1) in
    ret_int
      (Int64.of_int (format_engine ctx To_stream fmt (List.tl (List.tl args))))
  | "sprintf" ->
    let fmt = read_cstr ctx (ai 1) in
    ret_int
      (Int64.of_int
         (format_engine ctx (To_buffer (ref (ai 0))) fmt (List.tl (List.tl args))))
  | "snprintf" ->
    (* cap ignored beyond NUL handling: good enough for the corpus *)
    let fmt = read_cstr ctx (ai 2) in
    ret_int
      (Int64.of_int
         (format_engine ctx (To_buffer (ref (ai 0))) fmt
            (List.tl (List.tl (List.tl args)))))
  | "scanf" ->
    let fmt = read_cstr ctx (ai 0) in
    ret_int (Int64.of_int (scan_engine ctx fmt (List.tl args)))
  | "fscanf" ->
    let fmt = read_cstr ctx (ai 1) in
    ret_int (Int64.of_int (scan_engine ctx fmt (List.tl (List.tl args))))
  | "isdigit" -> ret_int (if ai 0 >= 48L && ai 0 <= 57L then 1L else 0L)
  | "isalpha" ->
    let c = Int64.to_int (ai 0) in
    ret_int (if (c >= 97 && c <= 122) || (c >= 65 && c <= 90) then 1L else 0L)
  | "isalnum" ->
    let c = Int64.to_int (ai 0) in
    ret_int
      (if (c >= 97 && c <= 122) || (c >= 65 && c <= 90) || (c >= 48 && c <= 57)
       then 1L
       else 0L)
  | "isspace" ->
    let c = Int64.to_int (ai 0) in
    ret_int (if c = 32 || (c >= 9 && c <= 13) then 1L else 0L)
  | "isupper" ->
    let c = Int64.to_int (ai 0) in
    ret_int (if c >= 65 && c <= 90 then 1L else 0L)
  | "islower" ->
    let c = Int64.to_int (ai 0) in
    ret_int (if c >= 97 && c <= 122 then 1L else 0L)
  | "toupper" ->
    let c = Int64.to_int (ai 0) in
    ret_int (Int64.of_int (if c >= 97 && c <= 122 then c - 32 else c))
  | "tolower" ->
    let c = Int64.to_int (ai 0) in
    ret_int (Int64.of_int (if c >= 65 && c <= 90 then c + 32 else c))
  | "sqrt" -> ret_float (sqrt (af 0))
  | "sin" -> ret_float (sin (af 0))
  | "cos" -> ret_float (cos (af 0))
  | "atan" -> ret_float (atan (af 0))
  | "exp" -> ret_float (exp (af 0))
  | "log" -> ret_float (log (af 0))
  | "pow" -> ret_float (Float.pow (af 0) (af 1))
  | "fabs" -> ret_float (Float.abs (af 0))
  | "floor" -> ret_float (Float.floor (af 0))
  | "ceil" -> ret_float (Float.ceil (af 0))
  | "fmod" -> ret_float (Float.rem (af 0) (af 1))
  | "qsort" ->
    let base = ai 0 in
    let n = Int64.to_int (ai 1) in
    let size = Int64.to_int (ai 2) in
    let cmp = ai 3 in
    let addr i = Int64.add base (Int64.of_int (i * size)) in
    let compare_elems i j =
      match ctx.call_indirect cmp [ Nvalue.int_ (addr i); Nvalue.int_ (addr j) ] with
      | Some v -> Int64.to_int (Nvalue.as_int v)
      | None -> 0
    in
    let swap i j =
      for k = 0 to size - 1 do
        let a = Int64.add (addr i) (Int64.of_int k) in
        let b = Int64.add (addr j) (Int64.of_int k) in
        let va = lc_load ctx a ~size:1 in
        let vb = lc_load ctx b ~size:1 in
        lc_store ctx a ~size:1 vb;
        lc_store ctx b ~size:1 va
      done
    in
    for i = 1 to n - 1 do
      let j = ref i in
      while !j > 0 && compare_elems !j (!j - 1) < 0 do
        swap !j (!j - 1);
        decr j
      done
    done;
    None
  | _ -> raise (Unknown_function name)
