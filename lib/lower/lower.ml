(** Lowering of the typed C AST to the IR, in the style of Clang -O0:
    every local variable becomes an [Alloca]; all reads and writes go
    through memory; no optimization is applied (the paper compiles all
    programs with -O0 "to lower the risk that bugs are optimized away").

    Short-circuit operators and the conditional operator are lowered with
    temporary allocas rather than phis — exactly the shape unoptimized
    Clang output has; [Opt.Mem2reg] cleans this up for the optimizing
    pipelines. *)

module A = Ast

exception Unsupported of Token.pos * string

let unsupported pos fmt =
  Format.kasprintf (fun msg -> raise (Unsupported (pos, msg))) fmt

(* ------------------------------------------------------------------ *)
(* Type mapping                                                        *)
(* ------------------------------------------------------------------ *)

let scalar_of_ctype pos (ty : Ctype.t) : Irtype.scalar =
  match Ctype.decay ty with
  | Ctype.Int (Ctype.IChar, _) -> Irtype.I8
  | Ctype.Int (Ctype.IShort, _) -> Irtype.I16
  | Ctype.Int (Ctype.IInt, _) -> Irtype.I32
  | Ctype.Int (Ctype.ILong, _) -> Irtype.I64
  | Ctype.Float Ctype.FFloat -> Irtype.F32
  | Ctype.Float Ctype.FDouble -> Irtype.F64
  | Ctype.Ptr _ -> Irtype.Ptr
  | Ctype.Void -> unsupported pos "void value in scalar position"
  | Ctype.Struct tag -> unsupported pos "struct %s by value is not supported" tag
  | Ctype.Array _ | Ctype.Func _ -> assert false (* removed by decay *)

let ret_scalar pos (ty : Ctype.t) : Irtype.scalar option =
  match ty with Ctype.Void -> None | _ -> Some (scalar_of_ctype pos ty)

let rec mty_of_ctype (lenv : Layout.env) (ty : Ctype.t) : Irtype.mty =
  match ty with
  | Ctype.Void -> Irtype.MScalar Irtype.I8
  | Ctype.Int (Ctype.IChar, _) -> Irtype.MScalar Irtype.I8
  | Ctype.Int (Ctype.IShort, _) -> Irtype.MScalar Irtype.I16
  | Ctype.Int (Ctype.IInt, _) -> Irtype.MScalar Irtype.I32
  | Ctype.Int (Ctype.ILong, _) -> Irtype.MScalar Irtype.I64
  | Ctype.Float Ctype.FFloat -> Irtype.MScalar Irtype.F32
  | Ctype.Float Ctype.FDouble -> Irtype.MScalar Irtype.F64
  | Ctype.Ptr _ | Ctype.Func _ -> Irtype.MScalar Irtype.Ptr
  | Ctype.Array (elem, Some n) -> Irtype.MArray (mty_of_ctype lenv elem, n)
  | Ctype.Array (elem, None) -> Irtype.MArray (mty_of_ctype lenv elem, 0)
  | Ctype.Struct tag ->
    let fields =
      List.map
        (fun (name, fty, off) ->
          { Irtype.mf_name = name; mf_ty = mty_of_ctype lenv fty; mf_off = off })
        (Layout.fields_with_offsets lenv tag)
    in
    Irtype.MStruct
      {
        Irtype.s_tag = tag;
        s_fields = fields;
        s_size = Layout.size lenv (Ctype.Struct tag);
        s_align = Layout.align lenv (Ctype.Struct tag);
      }

let is_unsigned (ty : Ctype.t) =
  match Ctype.decay ty with
  | Ctype.Int (_, Ctype.Unsigned) -> true
  | Ctype.Ptr _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Lowering state                                                      *)
(* ------------------------------------------------------------------ *)

type ctx = {
  env : Sema.env;
  m : Irmod.t;
  mutable b : Builder.t;
  mutable locals : (string * (Instr.value * Ctype.t)) list list;
      (** scope stack of (name -> alloca pointer, declared type) *)
  mutable break_labels : string list;
  mutable continue_labels : string list;
  strings : (string, string) Hashtbl.t;  (** literal -> global name *)
  string_prefix : string;
  mutable string_count : int;
  mutable ret_ty : Ctype.t;
  src_file : string;  (** display name stamped on every emitted function *)
}

(** Emit a [Srcloc] provenance marker for the statement at [pos]: the
    interpreter updates the frame's current line from it, so run-time
    errors can name the faulting C statement. *)
let emit_loc ctx (pos : Token.pos) =
  Builder.emit ctx.b (Instr.Srcloc (pos.Token.line, pos.Token.col))

let push_locals ctx = ctx.locals <- [] :: ctx.locals

let pop_locals ctx =
  match ctx.locals with
  | _ :: rest -> ctx.locals <- rest
  | [] -> failwith "lower: scope underflow"

let add_local ctx name v ty =
  match ctx.locals with
  | scope :: rest -> ctx.locals <- ((name, (v, ty)) :: scope) :: rest
  | [] -> failwith "lower: no scope"

let find_local ctx name =
  let rec go = function
    | [] -> None
    | scope :: rest -> begin
      match List.assoc_opt name scope with
      | Some x -> Some x
      | None -> go rest
    end
  in
  go ctx.locals

(** Intern a string literal as a global byte array (with NUL). *)
let intern_string ctx s =
  match Hashtbl.find_opt ctx.strings s with
  | Some name -> name
  | None ->
    ctx.string_count <- ctx.string_count + 1;
    let name = Printf.sprintf "%s.%d" ctx.string_prefix ctx.string_count in
    Hashtbl.replace ctx.strings s name;
    Irmod.add_global ctx.m
      {
        Irmod.g_name = name;
        g_ty = Irtype.MArray (Irtype.MScalar Irtype.I8, String.length s + 1);
        g_init = Irmod.Gstring (s ^ "\000");
      };
    name

(* ------------------------------------------------------------------ *)
(* Conversions                                                        *)
(* ------------------------------------------------------------------ *)

(** When false, immediate conversions lower to real cast instructions
    instead of folding here.  All production pipelines keep this on (as
    Clang does even at -O0); the differential-testing oracle flips it to
    cross-check front-end folding against the engines' cast semantics. *)
let fold_immediates = ref true

(** Convert value [v] of C type [from_ty] to C type [to_ty], emitting
    cast instructions as needed. *)
let coerce ctx pos ~(from_ty : Ctype.t) ~(to_ty : Ctype.t) (v : Instr.value) :
    Instr.value =
  let from_ty = Ctype.decay from_ty and to_ty = Ctype.decay to_ty in
  if Ctype.equal from_ty to_ty then v
  else begin
    let fs = scalar_of_ctype pos from_ty in
    let ts = scalar_of_ctype pos to_ty in
    let b = ctx.b in
    match (v, fs, ts) with
    (* Immediate conversions fold in the front end — Clang does this
       even at -O0, which is what lets its backend delete constant-index
       out-of-bounds accesses (paper case study 3). *)
    | Instr.ImmInt (x, _), _, _
      when !fold_immediates && Irtype.is_int_scalar fs
           && Irtype.is_int_scalar ts ->
      let widened =
        if Irtype.scalar_size ts > Irtype.scalar_size fs && is_unsigned from_ty
        then Irtype.unsigned_of fs x
        else x
      in
      Instr.ImmInt (Irtype.normalize_int ts widened, ts)
    | Instr.ImmInt (x, _), _, (Irtype.F32 | Irtype.F64) when !fold_immediates ->
      Instr.ImmFloat
        ( Irtype.round_result ts
            (if is_unsigned from_ty then
               let u = Irtype.unsigned_of fs x in
               if u >= 0L then Int64.to_float u
               else Int64.to_float u +. 18446744073709551616.0
             else Int64.to_float x),
          ts )
    | Instr.ImmFloat (f, _), _, (Irtype.F32 | Irtype.F64) when !fold_immediates ->
      Instr.ImmFloat (Irtype.round_result ts f, ts)
    | Instr.ImmInt (0L, _), _, Irtype.Ptr -> Instr.Null
    | _ ->
    match (fs, ts) with
    | a, b' when a = b' -> v
    | (Irtype.F32 | Irtype.F64), (Irtype.F32 | Irtype.F64) ->
      let op = if fs = Irtype.F32 then Instr.Fpext else Instr.Fptrunc in
      Builder.cast b op ~from:fs ~into:ts v
    | (Irtype.F32 | Irtype.F64), _ when Irtype.is_int_scalar ts ->
      let op = if is_unsigned to_ty then Instr.Fptoui else Instr.Fptosi in
      Builder.cast b op ~from:fs ~into:ts v
    | _, (Irtype.F32 | Irtype.F64) when Irtype.is_int_scalar fs ->
      let op = if is_unsigned from_ty then Instr.Uitofp else Instr.Sitofp in
      Builder.cast b op ~from:fs ~into:ts v
    | Irtype.Ptr, _ when Irtype.is_int_scalar ts ->
      Builder.cast b Instr.Ptrtoint ~from:fs ~into:ts v
    | _, Irtype.Ptr when Irtype.is_int_scalar fs ->
      Builder.cast b Instr.Inttoptr ~from:fs ~into:ts v
    | _, _ when Irtype.is_int_scalar fs && Irtype.is_int_scalar ts ->
      let fw = Irtype.scalar_size fs and tw = Irtype.scalar_size ts in
      if fw = tw then v
      else if fw > tw then Builder.cast b Instr.Trunc ~from:fs ~into:ts v
      else begin
        let op = if is_unsigned from_ty then Instr.Zext else Instr.Sext in
        Builder.cast b op ~from:fs ~into:ts v
      end
    | _ ->
      unsupported pos "cannot convert %s to %s" (Ctype.to_string from_ty)
        (Ctype.to_string to_ty)
  end

(** Produce an i1 "is true" flag from a scalar C value. *)
let truth ctx pos (ty : Ctype.t) (v : Instr.value) : Instr.value =
  let ty = Ctype.decay ty in
  let s = scalar_of_ctype pos ty in
  match s with
  | Irtype.F32 | Irtype.F64 ->
    Builder.fcmp ctx.b Instr.Fne s v (Instr.ImmFloat (0.0, s))
  | Irtype.Ptr -> Builder.icmp ctx.b Instr.Ine s v Instr.Null
  | _ -> Builder.icmp ctx.b Instr.Ine s v (Instr.ImmInt (0L, s))

(* ------------------------------------------------------------------ *)
(* Expressions                                                        *)
(* ------------------------------------------------------------------ *)

let imm_int v s = Instr.ImmInt (Irtype.normalize_int s v, s)

let rec lower_lvalue ctx (e : A.expr) : Instr.value =
  match e.A.desc with
  | A.Ident name -> begin
    match find_local ctx name with
    | Some (ptr, _) -> ptr
    | None ->
      if Hashtbl.mem ctx.env.Sema.globals name then Instr.GlobalAddr name
      else if Hashtbl.mem ctx.env.Sema.funcs name then Instr.FuncAddr name
      else unsupported e.A.pos "unknown identifier %S" name
  end
  | A.Deref inner -> lower_rvalue ctx inner
  | A.Index (base, idx) ->
    let elem_ty = e.A.ty in
    let elem_size = Layout.size ctx.env.Sema.layout elem_ty in
    let base_ty = Ctype.decay base.A.ty in
    let base_v, idx_v =
      (* C allows idx[base] too; Sema already typed the element. *)
      if Ctype.is_pointer base_ty then
        (lower_rvalue ctx base, lower_index_value ctx idx)
      else (lower_rvalue ctx idx, lower_index_value ctx base)
    in
    Builder.gep ctx.b base_v [ Instr.Gindex (idx_v, elem_size) ]
  | A.Member (base, fname) -> begin
    match Ctype.decay base.A.ty with
    | Ctype.Struct tag ->
      let off, _ = Layout.field_offset ctx.env.Sema.layout tag fname in
      let idx = Layout.field_index ctx.env.Sema.layout tag fname in
      let base_v = lower_lvalue ctx base in
      Builder.gep ctx.b base_v [ Instr.Gfield (idx, off) ]
    | t -> unsupported e.A.pos "member of non-struct %s" (Ctype.to_string t)
  end
  | A.Arrow (base, fname) -> begin
    match Ctype.decay base.A.ty with
    | Ctype.Ptr (Ctype.Struct tag) ->
      let off, _ = Layout.field_offset ctx.env.Sema.layout tag fname in
      let idx = Layout.field_index ctx.env.Sema.layout tag fname in
      let base_v = lower_rvalue ctx base in
      Builder.gep ctx.b base_v [ Instr.Gfield (idx, off) ]
    | t -> unsupported e.A.pos "arrow on %s" (Ctype.to_string t)
  end
  | A.StrLit s -> Instr.GlobalAddr (intern_string ctx s)
  | A.Cast (_, inner) -> lower_lvalue ctx inner
  | _ -> unsupported e.A.pos "expression is not an lvalue"

(* Indexes and pointer-arithmetic offsets are widened to i64. *)
and lower_index_value ctx (e : A.expr) : Instr.value =
  let v = lower_rvalue ctx e in
  coerce ctx e.A.pos ~from_ty:e.A.ty ~to_ty:Ctype.long_t v

and lower_rvalue ctx (e : A.expr) : Instr.value =
  match e.A.desc with
  | A.IntLit (v, k, s) -> imm_int v (scalar_of_ctype e.A.pos (Ctype.Int (k, s)))
  | A.CharLit c -> imm_int (Int64.of_int (Char.code c)) Irtype.I32
  | A.FloatLit (f, k) ->
    (* A `float` literal denotes the nearest binary32 value: the lexer
       parses to double, so round here (16777217.0f must be 16777216). *)
    let s = scalar_of_ctype e.A.pos (Ctype.Float k) in
    Instr.ImmFloat (Irtype.round_result s f, s)
  | A.StrLit s -> Instr.GlobalAddr (intern_string ctx s)
  | A.Ident name -> begin
    match Ctype.decay e.A.ty <> e.A.ty, e.A.ty with
    | _, Ctype.Func _ -> Instr.FuncAddr name
    | true, _ ->
      (* Array-typed: the value is the object's address. *)
      lower_lvalue ctx e
    | false, _ ->
      let ptr = lower_lvalue ctx e in
      Builder.load ctx.b (scalar_of_ctype e.A.pos e.A.ty) ptr
  end
  | A.Index _ | A.Member _ | A.Arrow _ | A.Deref _ ->
    if Ctype.is_array e.A.ty then lower_lvalue ctx e
    else begin
      let ptr = lower_lvalue ctx e in
      Builder.load ctx.b (scalar_of_ctype e.A.pos e.A.ty) ptr
    end
  | A.Addrof inner -> lower_lvalue ctx inner
  | A.Unop (op, a) -> lower_unop ctx e op a
  | A.Binop (op, a, b) -> lower_binop ctx e op a b
  | A.Assign (op, lhs, rhs) -> lower_assign ctx e op lhs rhs
  | A.Cond (c, t, f) -> lower_cond ctx e c t f
  | A.Cast (ty, a) ->
    let v = lower_rvalue ctx a in
    if Ctype.is_void ty then v
    else coerce ctx e.A.pos ~from_ty:a.A.ty ~to_ty:ty v
  | A.Call (callee, args) -> begin
    match lower_call ctx e callee args with
    | Some v -> v
    | None ->
      (* void call in value position only occurs behind a Comma/Sexpr *)
      imm_int 0L Irtype.I32
  end
  | A.SizeofTy ty ->
    imm_int (Int64.of_int (Layout.size ctx.env.Sema.layout ty)) Irtype.I64
  | A.SizeofE a ->
    imm_int (Int64.of_int (Layout.size ctx.env.Sema.layout a.A.ty)) Irtype.I64
  | A.PreIncr a -> lower_incdec ctx e a ~delta:1L ~post:false
  | A.PreDecr a -> lower_incdec ctx e a ~delta:(-1L) ~post:false
  | A.PostIncr a -> lower_incdec ctx e a ~delta:1L ~post:true
  | A.PostDecr a -> lower_incdec ctx e a ~delta:(-1L) ~post:true
  | A.Comma (a, b) ->
    ignore (lower_discard ctx a);
    lower_rvalue ctx b

and lower_discard ctx (e : A.expr) =
  (* Evaluate for side effects only; void calls are legal here. *)
  match e.A.desc with
  | A.Call (callee, args) -> ignore (lower_call ctx e callee args)
  | _ -> ignore (lower_rvalue ctx e)

and lower_unop ctx (e : A.expr) op (a : A.expr) : Instr.value =
  let pos = e.A.pos in
  match op with
  | A.Neg ->
    let ty = e.A.ty in
    let s = scalar_of_ctype pos ty in
    let v = coerce ctx pos ~from_ty:a.A.ty ~to_ty:ty (lower_rvalue ctx a) in
    if Irtype.is_float_scalar s then
      Builder.binop ctx.b Instr.FSub s (Instr.ImmFloat (0.0, s)) v
    else Builder.binop ctx.b Instr.Sub s (imm_int 0L s) v
  | A.Bitnot ->
    let ty = e.A.ty in
    let s = scalar_of_ctype pos ty in
    let v = coerce ctx pos ~from_ty:a.A.ty ~to_ty:ty (lower_rvalue ctx a) in
    Builder.binop ctx.b Instr.Xor s v (imm_int (-1L) s)
  | A.Lognot ->
    let v = lower_rvalue ctx a in
    let t = truth ctx pos a.A.ty v in
    (* !x is 1 when x is 0 *)
    let inverted = Builder.binop ctx.b Instr.Xor Irtype.I1 t (imm_int 1L Irtype.I1) in
    Builder.cast ctx.b Instr.Zext ~from:Irtype.I1 ~into:Irtype.I32 inverted

and lower_binop ctx (e : A.expr) op (a : A.expr) (b : A.expr) : Instr.value =
  let pos = e.A.pos in
  let lenv = ctx.env.Sema.layout in
  let ta = Ctype.decay a.A.ty and tb = Ctype.decay b.A.ty in
  match op with
  | A.Logand | A.Logor -> lower_shortcircuit ctx e op a b
  | A.Add when Ctype.is_pointer ta && Ctype.is_integer tb ->
    let elem = match ta with Ctype.Ptr t -> t | _ -> assert false in
    let base = lower_rvalue ctx a in
    let idx = lower_index_value ctx b in
    Builder.gep ctx.b base [ Instr.Gindex (idx, Layout.size lenv elem) ]
  | A.Add when Ctype.is_integer ta && Ctype.is_pointer tb ->
    let elem = match tb with Ctype.Ptr t -> t | _ -> assert false in
    let base = lower_rvalue ctx b in
    let idx = lower_index_value ctx a in
    Builder.gep ctx.b base [ Instr.Gindex (idx, Layout.size lenv elem) ]
  | A.Sub when Ctype.is_pointer ta && Ctype.is_integer tb ->
    let elem = match ta with Ctype.Ptr t -> t | _ -> assert false in
    let base = lower_rvalue ctx a in
    let idx = lower_index_value ctx b in
    let neg =
      Builder.binop ctx.b Instr.Sub Irtype.I64 (imm_int 0L Irtype.I64) idx
    in
    Builder.gep ctx.b base [ Instr.Gindex (neg, Layout.size lenv elem) ]
  | A.Sub when Ctype.is_pointer ta && Ctype.is_pointer tb ->
    let elem = match ta with Ctype.Ptr t -> t | _ -> assert false in
    let va = lower_rvalue ctx a and vb = lower_rvalue ctx b in
    let ia = Builder.cast ctx.b Instr.Ptrtoint ~from:Irtype.Ptr ~into:Irtype.I64 va in
    let ib = Builder.cast ctx.b Instr.Ptrtoint ~from:Irtype.Ptr ~into:Irtype.I64 vb in
    let diff = Builder.binop ctx.b Instr.Sub Irtype.I64 ia ib in
    let esize = max 1 (Layout.size lenv elem) in
    Builder.binop ctx.b Instr.Sdiv Irtype.I64 diff (imm_int (Int64.of_int esize) Irtype.I64)
  | A.Lt | A.Gt | A.Le | A.Ge | A.Eq | A.Ne -> lower_comparison ctx e op a b
  | _ ->
    (* Plain arithmetic: both operands convert to the result type. *)
    let ty = e.A.ty in
    let s = scalar_of_ctype pos ty in
    let va = coerce ctx pos ~from_ty:a.A.ty ~to_ty:ty (lower_rvalue ctx a) in
    let vb =
      (* Shift counts keep their own promoted type in C; converting to
         the result type is harmless for the widths we support. *)
      coerce ctx pos ~from_ty:b.A.ty ~to_ty:ty (lower_rvalue ctx b)
    in
    let unsigned = is_unsigned ty in
    let iop =
      match op with
      | A.Add -> if Irtype.is_float_scalar s then Instr.FAdd else Instr.Add
      | A.Sub -> if Irtype.is_float_scalar s then Instr.FSub else Instr.Sub
      | A.Mul -> if Irtype.is_float_scalar s then Instr.FMul else Instr.Mul
      | A.Div ->
        if Irtype.is_float_scalar s then Instr.FDiv
        else if unsigned then Instr.Udiv
        else Instr.Sdiv
      | A.Mod -> if unsigned then Instr.Urem else Instr.Srem
      | A.Shl -> Instr.Shl
      | A.Shr -> if unsigned then Instr.Lshr else Instr.Ashr
      | A.Band -> Instr.And
      | A.Bor -> Instr.Or
      | A.Bxor -> Instr.Xor
      | A.Lt | A.Gt | A.Le | A.Ge | A.Eq | A.Ne | A.Logand | A.Logor ->
        assert false
    in
    Builder.binop ctx.b iop s va vb

and lower_comparison ctx (e : A.expr) op (a : A.expr) (b : A.expr) :
    Instr.value =
  let pos = e.A.pos in
  let ta = Ctype.decay a.A.ty and tb = Ctype.decay b.A.ty in
  let common =
    if Ctype.is_pointer ta || Ctype.is_pointer tb then
      if Ctype.is_pointer ta then ta else tb
    else Ctype.usual_arith ta tb
  in
  let va = coerce ctx pos ~from_ty:a.A.ty ~to_ty:common (lower_rvalue ctx a) in
  let vb = coerce ctx pos ~from_ty:b.A.ty ~to_ty:common (lower_rvalue ctx b) in
  let s = scalar_of_ctype pos common in
  let flag =
    if Irtype.is_float_scalar s then begin
      let fop =
        match op with
        | A.Lt -> Instr.Flt
        | A.Gt -> Instr.Fgt
        | A.Le -> Instr.Fle
        | A.Ge -> Instr.Fge
        | A.Eq -> Instr.Feq
        | A.Ne -> Instr.Fne
        | _ -> assert false
      in
      Builder.fcmp ctx.b fop s va vb
    end
    else begin
      let unsigned = is_unsigned common in
      let iop =
        match op with
        | A.Lt -> if unsigned then Instr.Iult else Instr.Islt
        | A.Gt -> if unsigned then Instr.Iugt else Instr.Isgt
        | A.Le -> if unsigned then Instr.Iule else Instr.Isle
        | A.Ge -> if unsigned then Instr.Iuge else Instr.Isge
        | A.Eq -> Instr.Ieq
        | A.Ne -> Instr.Ine
        | _ -> assert false
      in
      Builder.icmp ctx.b iop s va vb
    end
  in
  Builder.cast ctx.b Instr.Zext ~from:Irtype.I1 ~into:Irtype.I32 flag

(* Short-circuit via a temporary alloca, as unoptimized Clang does. *)
and lower_shortcircuit ctx (e : A.expr) op (a : A.expr) (b : A.expr) :
    Instr.value =
  let bld = ctx.b in
  let tmp = Builder.alloca bld (Irtype.MScalar Irtype.I32) in
  let rhs_l = Builder.fresh_label bld "sc.rhs" in
  let end_l = Builder.fresh_label bld "sc.end" in
  let va = lower_rvalue ctx a in
  let fa = truth ctx a.A.pos a.A.ty va in
  let fa32 = Builder.cast bld Instr.Zext ~from:Irtype.I1 ~into:Irtype.I32 fa in
  Builder.store bld Irtype.I32 fa32 tmp;
  (match op with
  | A.Logand -> Builder.terminate bld (Instr.Condbr (fa, rhs_l, end_l))
  | A.Logor -> Builder.terminate bld (Instr.Condbr (fa, end_l, rhs_l))
  | _ -> assert false);
  let rhs_b = Builder.new_block bld rhs_l in
  Builder.switch_to bld rhs_b;
  let vb = lower_rvalue ctx b in
  let fb = truth ctx b.A.pos b.A.ty vb in
  let fb32 = Builder.cast bld Instr.Zext ~from:Irtype.I1 ~into:Irtype.I32 fb in
  Builder.store bld Irtype.I32 fb32 tmp;
  Builder.terminate bld (Instr.Br end_l);
  let end_b = Builder.new_block bld end_l in
  Builder.switch_to bld end_b;
  ignore e;
  Builder.load bld Irtype.I32 tmp

and lower_cond ctx (e : A.expr) (c : A.expr) (t : A.expr) (f : A.expr) :
    Instr.value =
  let bld = ctx.b in
  let is_void = Ctype.is_void e.A.ty in
  let s = if is_void then Irtype.I32 else scalar_of_ctype e.A.pos e.A.ty in
  let tmp = Builder.alloca bld (Irtype.MScalar s) in
  let then_l = Builder.fresh_label bld "cond.t" in
  let else_l = Builder.fresh_label bld "cond.f" in
  let end_l = Builder.fresh_label bld "cond.end" in
  let vc = lower_rvalue ctx c in
  let fc = truth ctx c.A.pos c.A.ty vc in
  Builder.terminate bld (Instr.Condbr (fc, then_l, else_l));
  let then_b = Builder.new_block bld then_l in
  Builder.switch_to bld then_b;
  if is_void then lower_discard ctx t
  else begin
    let vt = coerce ctx t.A.pos ~from_ty:t.A.ty ~to_ty:e.A.ty (lower_rvalue ctx t) in
    Builder.store bld s vt tmp
  end;
  Builder.terminate bld (Instr.Br end_l);
  let else_b = Builder.new_block bld else_l in
  Builder.switch_to bld else_b;
  if is_void then lower_discard ctx f
  else begin
    let vf = coerce ctx f.A.pos ~from_ty:f.A.ty ~to_ty:e.A.ty (lower_rvalue ctx f) in
    Builder.store bld s vf tmp
  end;
  Builder.terminate bld (Instr.Br end_l);
  let end_b = Builder.new_block bld end_l in
  Builder.switch_to bld end_b;
  Builder.load bld s tmp

and lower_assign ctx (e : A.expr) op (lhs : A.expr) (rhs : A.expr) :
    Instr.value =
  let pos = e.A.pos in
  (match Ctype.decay lhs.A.ty with
  | Ctype.Struct tag ->
    unsupported pos "assignment of struct %s by value is not supported" tag
  | _ -> ());
  let ptr = lower_lvalue ctx lhs in
  let s = scalar_of_ctype pos lhs.A.ty in
  let value =
    match op with
    | None -> coerce ctx pos ~from_ty:rhs.A.ty ~to_ty:lhs.A.ty (lower_rvalue ctx rhs)
    | Some bop ->
      (* lhs op= rhs  ==>  lhs = (T)(lhs op rhs) *)
      let lt = Ctype.decay lhs.A.ty and rt = Ctype.decay rhs.A.ty in
      if Ctype.is_pointer lt then begin
        (* p += n / p -= n *)
        let elem = match lt with Ctype.Ptr t -> t | _ -> assert false in
        let cur = Builder.load ctx.b s ptr in
        let idx = lower_index_value ctx rhs in
        let idx =
          match bop with
          | A.Add -> idx
          | A.Sub ->
            Builder.binop ctx.b Instr.Sub Irtype.I64 (imm_int 0L Irtype.I64) idx
          | _ -> unsupported pos "invalid pointer compound assignment"
        in
        Builder.gep ctx.b cur
          [ Instr.Gindex (idx, Layout.size ctx.env.Sema.layout elem) ]
      end
      else begin
        let opty = Ctype.usual_arith lt rt in
        let os = scalar_of_ctype pos opty in
        let cur = Builder.load ctx.b s ptr in
        let cur = coerce ctx pos ~from_ty:lt ~to_ty:opty cur in
        let rv = coerce ctx pos ~from_ty:rhs.A.ty ~to_ty:opty (lower_rvalue ctx rhs) in
        let unsigned = is_unsigned opty in
        let iop =
          match bop with
          | A.Add -> if Irtype.is_float_scalar os then Instr.FAdd else Instr.Add
          | A.Sub -> if Irtype.is_float_scalar os then Instr.FSub else Instr.Sub
          | A.Mul -> if Irtype.is_float_scalar os then Instr.FMul else Instr.Mul
          | A.Div ->
            if Irtype.is_float_scalar os then Instr.FDiv
            else if unsigned then Instr.Udiv
            else Instr.Sdiv
          | A.Mod -> if unsigned then Instr.Urem else Instr.Srem
          | A.Shl -> Instr.Shl
          | A.Shr -> if unsigned then Instr.Lshr else Instr.Ashr
          | A.Band -> Instr.And
          | A.Bor -> Instr.Or
          | A.Bxor -> Instr.Xor
          | _ -> unsupported pos "invalid compound assignment operator"
        in
        let res = Builder.binop ctx.b iop os cur rv in
        coerce ctx pos ~from_ty:opty ~to_ty:lhs.A.ty res
      end
  in
  Builder.store ctx.b s value ptr;
  value

and lower_incdec ctx (e : A.expr) (a : A.expr) ~delta ~post : Instr.value =
  let pos = e.A.pos in
  let ptr = lower_lvalue ctx a in
  let ty = Ctype.decay a.A.ty in
  let s = scalar_of_ctype pos ty in
  let old_v = Builder.load ctx.b s ptr in
  let new_v =
    if Ctype.is_pointer ty then begin
      let elem = match ty with Ctype.Ptr t -> t | _ -> assert false in
      Builder.gep ctx.b old_v
        [ Instr.Gindex (imm_int delta Irtype.I64, Layout.size ctx.env.Sema.layout elem) ]
    end
    else if Irtype.is_float_scalar s then
      Builder.binop ctx.b Instr.FAdd s old_v
        (Instr.ImmFloat (Int64.to_float delta, s))
    else Builder.binop ctx.b Instr.Add s old_v (imm_int delta s)
  in
  Builder.store ctx.b s new_v ptr;
  if post then old_v else new_v

and lower_call ctx (e : A.expr) (callee : A.expr) (args : A.expr list) :
    Instr.value option =
  let pos = e.A.pos in
  let fsig =
    match Ctype.decay callee.A.ty with
    | Ctype.Ptr (Ctype.Func fsig) -> fsig
    | Ctype.Func fsig -> fsig
    | t -> unsupported pos "call of non-function %s" (Ctype.to_string t)
  in
  let target =
    match callee.A.desc with
    | A.Ident name when Hashtbl.mem ctx.env.Sema.funcs name
                        && find_local ctx name = None ->
      Instr.Direct name
    | _ -> Instr.Indirect (lower_rvalue ctx callee)
  in
  let nparams = List.length fsig.Ctype.params in
  let lowered_args =
    List.mapi
      (fun i (arg : A.expr) ->
        if i < nparams then begin
          let pt = List.nth fsig.Ctype.params i in
          let v = coerce ctx pos ~from_ty:arg.A.ty ~to_ty:pt (lower_rvalue ctx arg) in
          (scalar_of_ctype pos pt, v)
        end
        else begin
          (* Default argument promotions for variadic extras. *)
          let at = Ctype.decay arg.A.ty in
          let promoted =
            match at with
            | Ctype.Float Ctype.FFloat -> Ctype.double_t
            | Ctype.Int (k, _) when Ctype.rank k < Ctype.rank Ctype.IInt ->
              Ctype.promote at
            | t -> t
          in
          let v =
            coerce ctx pos ~from_ty:arg.A.ty ~to_ty:promoted (lower_rvalue ctx arg)
          in
          (scalar_of_ctype pos promoted, v)
        end)
      args
  in
  Builder.call ctx.b (ret_scalar_opt pos fsig.Ctype.ret) target lowered_args

and ret_scalar_opt pos ty = ret_scalar pos ty

(* ------------------------------------------------------------------ *)
(* Initializers                                                        *)
(* ------------------------------------------------------------------ *)

(* Store initializer [init] into the object at [ptr] of type [ty],
   zero-filling the tail that a partial brace list leaves out (C11
   6.7.9p21). *)
let rec lower_local_init ctx pos (ty : Ctype.t) (init : A.init)
    (ptr : Instr.value) =
  let lenv = ctx.env.Sema.layout in
  match (ty, init) with
  | Ctype.Array (Ctype.Int (Ctype.IChar, _), Some n), A.Iexpr { A.desc = A.StrLit s; _ } ->
    (* char s[n] = "..." : bytes plus NUL, zero-fill the rest. *)
    for i = 0 to n - 1 do
      let byte = if i < String.length s then Char.code s.[i] else 0 in
      let cell = Builder.gep ctx.b ptr [ Instr.Gindex (imm_int (Int64.of_int i) Irtype.I64, 1) ] in
      Builder.store ctx.b Irtype.I8 (imm_int (Int64.of_int byte) Irtype.I8) cell
    done
  | Ctype.Array (elem, Some n), A.Ilist items ->
    let esize = Layout.size lenv elem in
    List.iteri
      (fun i item ->
        let cell =
          Builder.gep ctx.b ptr
            [ Instr.Gindex (imm_int (Int64.of_int i) Irtype.I64, esize) ]
        in
        lower_local_init ctx pos elem item cell)
      items;
    (* zero-fill the tail *)
    let filled = List.length items in
    if filled < n then
      zero_fill ctx elem ptr ~from_idx:filled ~to_idx:n ~esize
  | Ctype.Struct tag, A.Ilist items ->
    let fields = Layout.fields_with_offsets lenv tag in
    List.iteri
      (fun i item ->
        let fname, fty, off = List.nth fields i in
        let idx = Layout.field_index lenv tag fname in
        let cell = Builder.gep ctx.b ptr [ Instr.Gfield (idx, off) ] in
        lower_local_init ctx pos fty item cell)
      items;
    (* zero-fill remaining fields *)
    List.iteri
      (fun i (fname, fty, off) ->
        if i >= List.length items then begin
          let idx = Layout.field_index lenv tag fname in
          let cell = Builder.gep ctx.b ptr [ Instr.Gfield (idx, off) ] in
          zero_init ctx pos fty cell
        end)
      fields
  | _, A.Iexpr rhs ->
    let v = coerce ctx pos ~from_ty:rhs.A.ty ~to_ty:ty (lower_rvalue ctx rhs) in
    Builder.store ctx.b (scalar_of_ctype pos ty) v ptr
  | _, A.Ilist _ ->
    unsupported pos "brace initializer for %s" (Ctype.to_string ty)

and zero_fill ctx elem ptr ~from_idx ~to_idx ~esize =
  for i = from_idx to to_idx - 1 do
    let cell =
      Builder.gep ctx.b ptr
        [ Instr.Gindex (imm_int (Int64.of_int i) Irtype.I64, esize) ]
    in
    zero_init ctx Token.dummy_pos elem cell
  done

and zero_init ctx pos (ty : Ctype.t) (ptr : Instr.value) =
  match ty with
  | Ctype.Array (elem, Some n) ->
    zero_fill ctx elem ptr ~from_idx:0 ~to_idx:n
      ~esize:(Layout.size ctx.env.Sema.layout elem)
  | Ctype.Struct tag ->
    let lenv = ctx.env.Sema.layout in
    List.iter
      (fun (fname, fty, off) ->
        let idx = Layout.field_index lenv tag fname in
        let cell = Builder.gep ctx.b ptr [ Instr.Gfield (idx, off) ] in
        zero_init ctx pos fty cell)
      (Layout.fields_with_offsets lenv tag)
  | _ ->
    let s = scalar_of_ctype pos ty in
    let zero =
      if Irtype.is_float_scalar s then Instr.ImmFloat (0.0, s)
      else if s = Irtype.Ptr then Instr.Null
      else imm_int 0L s
    in
    Builder.store ctx.b s zero ptr

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)
(* ------------------------------------------------------------------ *)

(* Statement-granularity provenance: the position of the code a
   statement starts executing (its controlling expression for the
   composite forms). *)
let rec stmt_pos (s : A.stmt) : Token.pos option =
  match s with
  | A.Sempty | A.Sblock _ -> None
  | A.Sexpr e
  | A.Sif (e, _, _)
  | A.Swhile (e, _)
  | A.Sdo (_, e)
  | A.Sswitch (e, _, _) ->
    Some e.A.pos
  | A.Sdecl (d :: _) -> Some d.A.d_pos
  | A.Sdecl [] -> None
  | A.Sfor (Some init, _, _, _) -> stmt_pos init
  | A.Sfor (None, Some c, _, _) -> Some c.A.pos
  | A.Sfor (None, None, _, _) -> None
  | A.Sreturn (_, pos)
  | A.Sbreak pos
  | A.Scontinue pos
  | A.Scase (_, pos)
  | A.Sdefault pos ->
    Some pos

let rec lower_stmt ctx (s : A.stmt) =
  (match stmt_pos s with Some pos -> emit_loc ctx pos | None -> ());
  match s with
  | A.Sempty -> ()
  | A.Sexpr e -> lower_discard ctx e
  | A.Sdecl decls ->
    List.iter
      (fun (d : A.decl) ->
        let mty = mty_of_ctype ctx.env.Sema.layout d.A.d_ty in
        let ptr = Builder.alloca ctx.b mty in
        add_local ctx d.A.d_name ptr d.A.d_ty;
        match d.A.d_init with
        | Some init -> lower_local_init ctx d.A.d_pos d.A.d_ty init ptr
        | None -> ())
      decls
  | A.Sblock stmts ->
    push_locals ctx;
    List.iter (lower_stmt ctx) stmts;
    pop_locals ctx
  | A.Sif (c, t, f) ->
    let bld = ctx.b in
    let then_l = Builder.fresh_label bld "if.t" in
    let end_l = Builder.fresh_label bld "if.end" in
    let else_l =
      match f with Some _ -> Builder.fresh_label bld "if.f" | None -> end_l
    in
    let vc = lower_rvalue ctx c in
    let fc = truth ctx c.A.pos c.A.ty vc in
    Builder.terminate bld (Instr.Condbr (fc, then_l, else_l));
    let then_b = Builder.new_block bld then_l in
    Builder.switch_to bld then_b;
    lower_stmt ctx t;
    Builder.terminate bld (Instr.Br end_l);
    (match f with
    | Some f ->
      let else_b = Builder.new_block bld else_l in
      Builder.switch_to bld else_b;
      lower_stmt ctx f;
      Builder.terminate bld (Instr.Br end_l)
    | None -> ());
    let end_b = Builder.new_block bld end_l in
    Builder.switch_to bld end_b
  | A.Swhile (c, body) ->
    let bld = ctx.b in
    let cond_l = Builder.fresh_label bld "while.cond" in
    let body_l = Builder.fresh_label bld "while.body" in
    let end_l = Builder.fresh_label bld "while.end" in
    Builder.terminate bld (Instr.Br cond_l);
    let cond_b = Builder.new_block bld cond_l in
    Builder.switch_to bld cond_b;
    emit_loc ctx c.A.pos;
    let vc = lower_rvalue ctx c in
    let fc = truth ctx c.A.pos c.A.ty vc in
    Builder.terminate bld (Instr.Condbr (fc, body_l, end_l));
    let body_b = Builder.new_block bld body_l in
    Builder.switch_to bld body_b;
    ctx.break_labels <- end_l :: ctx.break_labels;
    ctx.continue_labels <- cond_l :: ctx.continue_labels;
    lower_stmt ctx body;
    ctx.break_labels <- List.tl ctx.break_labels;
    ctx.continue_labels <- List.tl ctx.continue_labels;
    Builder.terminate bld (Instr.Br cond_l);
    let end_b = Builder.new_block bld end_l in
    Builder.switch_to bld end_b
  | A.Sdo (body, c) ->
    let bld = ctx.b in
    let body_l = Builder.fresh_label bld "do.body" in
    let cond_l = Builder.fresh_label bld "do.cond" in
    let end_l = Builder.fresh_label bld "do.end" in
    Builder.terminate bld (Instr.Br body_l);
    let body_b = Builder.new_block bld body_l in
    Builder.switch_to bld body_b;
    ctx.break_labels <- end_l :: ctx.break_labels;
    ctx.continue_labels <- cond_l :: ctx.continue_labels;
    lower_stmt ctx body;
    ctx.break_labels <- List.tl ctx.break_labels;
    ctx.continue_labels <- List.tl ctx.continue_labels;
    Builder.terminate bld (Instr.Br cond_l);
    let cond_b = Builder.new_block bld cond_l in
    Builder.switch_to bld cond_b;
    emit_loc ctx c.A.pos;
    let vc = lower_rvalue ctx c in
    let fc = truth ctx c.A.pos c.A.ty vc in
    Builder.terminate bld (Instr.Condbr (fc, body_l, end_l));
    let end_b = Builder.new_block bld end_l in
    Builder.switch_to bld end_b
  | A.Sfor (init, cond, step, body) ->
    push_locals ctx;
    Option.iter (lower_stmt ctx) init;
    let bld = ctx.b in
    let cond_l = Builder.fresh_label bld "for.cond" in
    let body_l = Builder.fresh_label bld "for.body" in
    let step_l = Builder.fresh_label bld "for.step" in
    let end_l = Builder.fresh_label bld "for.end" in
    Builder.terminate bld (Instr.Br cond_l);
    let cond_b = Builder.new_block bld cond_l in
    Builder.switch_to bld cond_b;
    (match cond with
    | Some c ->
      emit_loc ctx c.A.pos;
      let vc = lower_rvalue ctx c in
      let fc = truth ctx c.A.pos c.A.ty vc in
      Builder.terminate bld (Instr.Condbr (fc, body_l, end_l))
    | None -> Builder.terminate bld (Instr.Br body_l));
    let body_b = Builder.new_block bld body_l in
    Builder.switch_to bld body_b;
    ctx.break_labels <- end_l :: ctx.break_labels;
    ctx.continue_labels <- step_l :: ctx.continue_labels;
    lower_stmt ctx body;
    ctx.break_labels <- List.tl ctx.break_labels;
    ctx.continue_labels <- List.tl ctx.continue_labels;
    Builder.terminate bld (Instr.Br step_l);
    let step_b = Builder.new_block bld step_l in
    Builder.switch_to bld step_b;
    Option.iter
      (fun (e : A.expr) ->
        emit_loc ctx e.A.pos;
        lower_discard ctx e)
      step;
    Builder.terminate bld (Instr.Br cond_l);
    let end_b = Builder.new_block bld end_l in
    Builder.switch_to bld end_b;
    pop_locals ctx
  | A.Sreturn (e, pos) -> begin
    match (e, ctx.ret_ty) with
    | None, _ -> Builder.terminate ctx.b (Instr.Ret None)
    | Some e, ret_ty ->
      let v = coerce ctx pos ~from_ty:e.A.ty ~to_ty:ret_ty (lower_rvalue ctx e) in
      Builder.terminate ctx.b
        (Instr.Ret (Some (scalar_of_ctype pos ret_ty, v)))
  end
  | A.Sbreak pos -> begin
    match ctx.break_labels with
    | l :: _ -> Builder.terminate ctx.b (Instr.Br l)
    | [] -> unsupported pos "break outside loop/switch"
  end
  | A.Scontinue pos -> begin
    match ctx.continue_labels with
    | l :: _ -> Builder.terminate ctx.b (Instr.Br l)
    | [] -> unsupported pos "continue outside loop"
  end
  | A.Sswitch (e, body, pos) -> lower_switch ctx e body pos
  | A.Scase (_, pos) | A.Sdefault pos ->
    unsupported pos "case label outside switch"

and lower_switch ctx (e : A.expr) (body : A.stmt list) pos =
  let bld = ctx.b in
  let v = lower_rvalue ctx e in
  (* C11 6.8.4.2: the controlling expression undergoes the integer
     promotions, and each case constant is converted to the promoted
     type.  Labels that collide after conversion are a constraint
     violation. *)
  let sty = Ctype.promote (Ctype.decay e.A.ty) in
  let sv = coerce ctx pos ~from_ty:e.A.ty ~to_ty:sty v in
  let end_l = Builder.fresh_label bld "sw.end" in
  let seen_values : (int64, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Assign a label to every case marker in the body. *)
  let case_labels =
    List.filter_map
      (function
        | A.Scase (value, cpos) ->
          let converted =
            Ctype.convert_const ~from_ty:Ctype.long_t ~to_ty:sty value
          in
          if Hashtbl.mem seen_values converted then
            Diag.error cpos
              "duplicate case label %Ld (after conversion to the promoted \
               controlling type)"
              converted;
          Hashtbl.replace seen_values converted ();
          Some (`Case converted, Builder.fresh_label bld "sw.case")
        | A.Sdefault _ -> Some (`Default, Builder.fresh_label bld "sw.default")
        | _ -> None)
      body
  in
  let cases =
    List.filter_map
      (function `Case v, l -> Some (v, l) | `Default, _ -> None)
      case_labels
  in
  let default_l =
    match
      List.find_opt (function `Default, _ -> true | _ -> false) case_labels
    with
    | Some (_, l) -> l
    | None -> end_l
  in
  Builder.terminate bld (Instr.Switch (sv, cases, default_l));
  ctx.break_labels <- end_l :: ctx.break_labels;
  (* Lower the body sequentially; each case marker opens its block, with
     fallthrough from the previous one. *)
  let remaining = ref case_labels in
  List.iter
    (fun stmt ->
      match stmt with
      | A.Scase _ | A.Sdefault _ -> begin
        match !remaining with
        | (_, l) :: rest ->
          remaining := rest;
          Builder.terminate bld (Instr.Br l);
          let blk = Builder.new_block bld l in
          Builder.switch_to bld blk
        | [] -> assert false
      end
      | s -> lower_stmt ctx s)
    body;
  ctx.break_labels <- List.tl ctx.break_labels;
  Builder.terminate bld (Instr.Br end_l);
  let end_b = Builder.new_block bld end_l in
  Builder.switch_to bld end_b

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)
(* ------------------------------------------------------------------ *)

(* Constant-evaluate a global initializer.  [ty] guides interpretation
   (e.g. a string literal initializing a char array vs. a char pointer). *)
let rec lower_global_init ctx (ty : Ctype.t) (init : A.init) : Irmod.ginit =
  let lenv = ctx.env.Sema.layout in
  match (ty, init) with
  | Ctype.Array (Ctype.Int (Ctype.IChar, _), Some n), A.Iexpr { A.desc = A.StrLit s; _ } ->
    let padded =
      let base = s ^ "\000" in
      if String.length base < n then
        base ^ String.make (n - String.length base) '\000'
      else String.sub base 0 n
    in
    Irmod.Gstring padded
  | Ctype.Array (elem, Some n), A.Ilist items ->
    let lowered = List.map (lower_global_init ctx elem) items in
    let pad = List.init (max 0 (n - List.length items)) (fun _ -> Irmod.Gzero) in
    Irmod.Garray (lowered @ pad)
  | Ctype.Struct tag, A.Ilist items ->
    let fields = Layout.fields_with_offsets lenv tag in
    let lowered =
      List.mapi
        (fun i item ->
          let _, fty, _ = List.nth fields i in
          lower_global_init ctx fty item)
        items
    in
    let pad =
      List.init (max 0 (List.length fields - List.length items)) (fun _ -> Irmod.Gzero)
    in
    Irmod.Gstruct_init (lowered @ pad)
  | _, A.Iexpr e -> lower_global_scalar ctx ty e
  | _, A.Ilist [ item ] -> lower_global_init ctx ty item
  | _, A.Ilist _ ->
    unsupported Token.dummy_pos "brace initializer for global %s"
      (Ctype.to_string ty)

and lower_global_scalar ctx (ty : Ctype.t) (e : A.expr) : Irmod.ginit =
  (* Sema has annotated every sub-expression, so this folder can follow
     the engines' semantics exactly: operands convert to the annotated
     result type, unsigned operands get logical shifts / unsigned
     division, shift counts are masked [land 63], and every result is
     normalized to the expression's width (the same rules as
     lib/opt/fold.ml and both engines — a mismatch here bakes a wrong
     constant into the image that no pipeline configuration can undo). *)
  let ity (e : A.expr) =
    if Ctype.is_integer (Ctype.decay e.A.ty) then Ctype.decay e.A.ty
    else Ctype.long_t
  in
  let rec const_int (e : A.expr) : int64 option =
    let conv (a : A.expr) into =
      Option.map
        (fun v -> Ctype.convert_const ~from_ty:(ity a) ~to_ty:into v)
        (const_int a)
    in
    match e.A.desc with
    | A.IntLit (v, k, s) -> Some (Ctype.normalize_const (Ctype.Int (k, s)) v)
    | A.CharLit c -> Some (Int64.of_int (Char.code c))
    | A.Unop (A.Neg, a) ->
      let rty = ity e in
      Option.map (fun v -> Ctype.normalize_const rty (Int64.neg v)) (conv a rty)
    | A.Cast (cty, a) ->
      if Ctype.is_integer cty then conv a cty else const_int a
    | A.Binop ((A.Shl | A.Shr) as op, a, b) -> begin
      let rty = ity e in
      match (conv a rty, const_int b) with
      | Some x, Some y ->
        let count = Int64.to_int y land 63 in
        let r =
          match op with
          | A.Shl -> Int64.shift_left x count
          | _ ->
            if is_unsigned rty then
              Int64.shift_right_logical (Ctype.zext_const rty x) count
            else Int64.shift_right x count
        in
        Some (Ctype.normalize_const rty r)
      | _ -> None
    end
    | A.Binop (op, a, b) -> begin
      let rty = ity e in
      match (conv a rty, conv b rty) with
      | Some x, Some y -> begin
        let fold r = Some (Ctype.normalize_const rty r) in
        match op with
        | A.Add -> fold (Int64.add x y)
        | A.Sub -> fold (Int64.sub x y)
        | A.Mul -> fold (Int64.mul x y)
        | A.Div when y <> 0L ->
          fold
            (if is_unsigned rty then
               Int64.unsigned_div (Ctype.zext_const rty x)
                 (Ctype.zext_const rty y)
             else Int64.div x y)
        | A.Mod when y <> 0L ->
          fold
            (if is_unsigned rty then
               Int64.unsigned_rem (Ctype.zext_const rty x)
                 (Ctype.zext_const rty y)
             else Int64.rem x y)
        | A.Bor -> fold (Int64.logor x y)
        | A.Band -> fold (Int64.logand x y)
        | A.Bxor -> fold (Int64.logxor x y)
        | _ -> None
      end
      | _ -> None
    end
    | _ -> None
  in
  let rec const_float (e : A.expr) : float option =
    match e.A.desc with
    | A.FloatLit (f, _) -> Some f
    | A.IntLit (v, k, s) ->
      (* Same conversion the runtime Sitofp/Uitofp performs. *)
      let lty = Ctype.Int (k, s) in
      let c = Ctype.normalize_const lty v in
      Some
        (if s = Ctype.Unsigned then begin
           let u = Ctype.zext_const lty c in
           if u >= 0L then Int64.to_float u
           else Int64.to_float u +. 18446744073709551616.0
         end
         else Int64.to_float c)
    | A.Unop (A.Neg, a) -> Option.map (fun f -> -.f) (const_float a)
    | A.Cast (_, a) -> const_float a
    | _ -> None
  in
  match (Ctype.decay ty, e.A.desc) with
  | Ctype.Ptr _, A.StrLit s -> Irmod.Gglobal_addr (intern_string ctx s)
  | Ctype.Ptr _, A.IntLit (0L, _, _) -> Irmod.Gzero
  | Ctype.Ptr _, A.Cast (_, { A.desc = A.IntLit (0L, _, _); _ }) -> Irmod.Gzero
  | Ctype.Ptr _, A.Addrof { A.desc = A.Ident name; _ } ->
    if Hashtbl.mem ctx.env.Sema.funcs name then Irmod.Gfunc_addr name
    else Irmod.Gglobal_addr name
  | Ctype.Ptr _, A.Ident name ->
    if Hashtbl.mem ctx.env.Sema.funcs name then Irmod.Gfunc_addr name
    else Irmod.Gglobal_addr name (* array decaying to pointer *)
  | Ctype.Float _, _ -> begin
    match const_float e with
    | Some f -> Irmod.Gfloat f
    | None -> unsupported e.A.pos "global initializer is not constant"
  end
  | _, _ -> begin
    match const_int e with
    | Some v ->
      (* Apply the implicit conversion from the initializer's type to
         the declared type before emitting the image bytes: widening
         from a narrower unsigned type must zero-extend, which the
         canonical (sign-extended) representation does not encode.
         Without this, `unsigned int g = (unsigned short)0x9373;` bakes
         0xFFFF9373 into the global — a wrong constant no pipeline
         configuration can undo (found by the differential oracle). *)
      let v =
        if Ctype.is_integer (Ctype.decay ty) then
          Ctype.convert_const ~from_ty:(ity e) ~to_ty:(Ctype.decay ty) v
        else v
      in
      Irmod.Gint v
    | None -> unsupported e.A.pos "global initializer is not constant"
  end

(* ------------------------------------------------------------------ *)
(* Functions and programs                                              *)
(* ------------------------------------------------------------------ *)

(* Move every Alloca to the head of the entry block, as Clang -O0 does.
   Initialization code stays where the declaration appeared (correct C
   semantics for initialized locals in loops); the native engine's stack
   pointer then moves once per call rather than once per iteration. *)
let hoist_allocas (f : Irfunc.t) =
  let allocas = ref [] in
  List.iter
    (fun (b : Irfunc.block) ->
      let keep, moved =
        List.partition
          (function Instr.Alloca _ -> false | _ -> true)
          b.Irfunc.instrs
      in
      allocas := !allocas @ moved;
      b.Irfunc.instrs <- keep)
    f.Irfunc.blocks;
  match f.Irfunc.blocks with
  | entry :: _ -> entry.Irfunc.instrs <- !allocas @ entry.Irfunc.instrs
  | [] -> ()

let lower_func ctx (f : A.func) =
  let pos = f.A.fn_pos in
  let params =
    List.mapi (fun i (_, ty) -> (i, scalar_of_ctype pos ty)) f.A.fn_params
  in
  let bld =
    Builder.create_function ~src_file:ctx.src_file ~name:f.A.fn_name ~params
      ~ret:(ret_scalar pos f.A.fn_sig.Ctype.ret)
      ~variadic:f.A.fn_sig.Ctype.variadic
      ~src_pos:(pos.Token.line, pos.Token.col) ()
  in
  ctx.b <- bld;
  ctx.ret_ty <- f.A.fn_sig.Ctype.ret;
  ctx.locals <- [];
  push_locals ctx;
  (* Clang -O0 style: spill every parameter to an alloca. *)
  List.iteri
    (fun i (name, ty) ->
      let mty = mty_of_ctype ctx.env.Sema.layout ty in
      let ptr = Builder.alloca bld mty in
      Builder.store bld (scalar_of_ctype pos ty) (Instr.Reg i) ptr;
      add_local ctx name ptr ty)
    f.A.fn_params;
  List.iter (lower_stmt ctx) f.A.fn_body;
  (* Falling off the end: return 0 (main and sloppy C), or void. *)
  (match f.A.fn_sig.Ctype.ret with
  | Ctype.Void -> Builder.terminate bld (Instr.Ret None)
  | ret ->
    let s = scalar_of_ctype pos ret in
    let zero =
      if Irtype.is_float_scalar s then Instr.ImmFloat (0.0, s)
      else if s = Irtype.Ptr then Instr.Null
      else Instr.ImmInt (0L, s)
    in
    Builder.terminate bld (Instr.Ret (Some (s, zero))));
  pop_locals ctx;
  let ir = Builder.finish bld in
  hoist_allocas ir;
  Irmod.add_func ctx.m ir



(** Host builtins available to the managed libc; they play the role of
    the functions "implemented in Java" in the paper (§3.1). *)
let builtin_externs =
  [
    (* name, ret, params, variadic *)
    ("__sulong_putchar", Some Irtype.I32, [ Irtype.I32 ], false);
    ("__sulong_exit", None, [ Irtype.I32 ], false);
    ("__sulong_abort", None, [], false);
    ("count_varargs", Some Irtype.I32, [], false);
    ("get_vararg", Some Irtype.Ptr, [ Irtype.I32 ], false);
    ("__sulong_format_pointer", Some Irtype.I64, [ Irtype.Ptr ], false);
    ("__sulong_read_char", Some Irtype.I32, [ Irtype.Ptr ], false);
    ("malloc", Some Irtype.Ptr, [ Irtype.I64 ], false);
    ("calloc", Some Irtype.Ptr, [ Irtype.I64; Irtype.I64 ], false);
    ("realloc", Some Irtype.Ptr, [ Irtype.Ptr; Irtype.I64 ], false);
    ("free", None, [ Irtype.Ptr ], false);
  ]

(** Lower a type-checked program to an IR module. *)
let lower ?(string_prefix = ".str") ?(file = "<input>") (env : Sema.env)
    (prog : A.program) : Irmod.t =
  let m = Irmod.create () in
  let dummy_builder =
    Builder.create_function ~name:"__dummy" ~params:[] ~ret:None
      ~variadic:false ~src_pos:(0, 0) ()
  in
  let ctx =
    {
      env;
      m;
      b = dummy_builder;
      locals = [];
      break_labels = [];
      continue_labels = [];
      strings = Hashtbl.create 32;
      string_prefix;
      string_count = 0;
      ret_ty = Ctype.Void;
      src_file = file;
    }
  in
  List.iter
    (fun (name, ret, params, variadic) ->
      Irmod.add_extern m
        { Irmod.e_name = name; e_ret = ret; e_params = params; e_variadic = variadic })
    builtin_externs;
  (* Globals first (functions reference them). *)
  List.iter
    (fun g ->
      match g with
      | A.Gvar d ->
        let g_init =
          match d.A.d_init with
          | Some init -> lower_global_init ctx d.A.d_ty init
          | None -> Irmod.Gzero
        in
        Irmod.add_global m
          {
            Irmod.g_name = d.A.d_name;
            g_ty = mty_of_ctype env.Sema.layout d.A.d_ty;
            g_init;
          }
      | A.Gfunc _ | A.Gfundecl _ | A.Gstruct _ | A.Gtypedef _ | A.Genum _ -> ())
    prog;
  (* Prototypes for functions that are declared but not defined in this
     unit become externs (resolved at link time against libc). *)
  List.iter
    (fun g ->
      match g with
      | A.Gfundecl (name, fsig)
        when (not (List.exists (function A.Gfunc f -> f.A.fn_name = name | _ -> false) prog))
             && Irmod.find_extern m name = None ->
        Irmod.add_extern m
          {
            Irmod.e_name = name;
            e_ret = ret_scalar Token.dummy_pos fsig.Ctype.ret;
            e_params =
              List.map (scalar_of_ctype Token.dummy_pos) fsig.Ctype.params;
            e_variadic = fsig.Ctype.variadic;
          }
      | _ -> ())
    prog;
  List.iter (fun g -> match g with A.Gfunc f -> lower_func ctx f | _ -> ()) prog;
  m

(** Front end in one call: parse, check, lower.  This is the "Clang -O0"
    of the reproduction.  [file] names the source in provenance reports;
    [start_line] renumbers its first line (see {!Lexer.tokenize}). *)
let frontend ?string_prefix ?file ?start_line (src : string) :
    Irmod.t * Sema.env =
  let prog =
    Trace.span "parse" (fun () -> Parser.parse_string ?start_line src)
  in
  let env = Trace.span "sema" (fun () -> Sema.check prog) in
  let m = Trace.span "lower" (fun () -> lower ?string_prefix ?file env prog) in
  (m, env)
