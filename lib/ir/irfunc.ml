(** IR functions: a list of labeled basic blocks. *)

type block = {
  label : string;
  mutable instrs : Instr.instr list;
  mutable term : Instr.terminator;
}

type t = {
  name : string;
  params : (Instr.reg * Irtype.scalar) list;
  ret : Irtype.scalar option;
  variadic : bool;
  mutable blocks : block list;  (** entry block first *)
  mutable next_reg : Instr.reg;
  src_pos : int * int;  (** source line/col of the definition, for errors *)
  src_file : string;  (** display name of the defining source, for reports *)
}

let entry f =
  match f.blocks with
  | b :: _ -> b
  | [] -> failwith ("irfunc: empty function " ^ f.name)

let find_block f label =
  match List.find_opt (fun b -> b.label = label) f.blocks with
  | Some b -> b
  | None -> failwith (Printf.sprintf "irfunc: no block %s in %s" label f.name)

let fresh_reg f =
  let r = f.next_reg in
  f.next_reg <- r + 1;
  r

(** Number of instructions, used by the JIT cost model (compilation cost
    is proportional to function size) and by reports.  [Srcloc] markers
    are metadata, not code: excluding them keeps the cost model's static
    sizes identical whether or not provenance is threaded through. *)
let instr_count f =
  let real = function Instr.Srcloc _ -> false | _ -> true in
  List.fold_left
    (fun acc b -> acc + List.length (List.filter real b.instrs) + 1)
    0 f.blocks

let iter_instrs f fn =
  List.iter (fun b -> List.iter (fn b) b.instrs) f.blocks

(** Map every instruction list in place. *)
let rewrite_blocks f fn =
  List.iter (fun b -> b.instrs <- fn b) f.blocks

(** Deep copy: blocks are mutable, so linking a cached module (the libc)
    into several programs requires fresh block records per program. *)
let copy f =
  {
    f with
    blocks =
      List.map
        (fun b -> { label = b.label; instrs = b.instrs; term = b.term })
        f.blocks;
  }
