(** Parser for the textual IR that [Irprint] emits — the repository's
    `llvm-as` to Irprint's `llvm-dis`.  Round trip guaranteed:
    [parse (Irprint.module_to_string m)] is structurally identical to
    [m] (asserted by property tests), so IR can be dumped, stored,
    hand-edited and re-executed.

    The grammar is exactly Irprint's output; error messages carry the
    line number. *)

exception Parse_error of int * string

let fail line fmt =
  Format.kasprintf (fun msg -> raise (Parse_error (line, msg))) fmt

(* ------------------------------------------------------------------ *)
(* Line-level tokenizer                                                *)
(* ------------------------------------------------------------------ *)

type tok =
  | Tword of string   (** identifiers, keywords, numbers, %1, @name *)
  | Tpunct of char    (** ( ) [ ] { } , : ; = *)
  | Tstring of string (** c"..." payload, unescaped *)

let tokenize_line lineno (s : string) : tok list =
  let n = String.length s in
  let toks = ref [] in
  let i = ref 0 in
  let is_word_char c =
    (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
    || c = '_' || c = '.' || c = '%' || c = '@' || c = '-' || c = '+'
  in
  while !i < n do
    let c = s.[!i] in
    if c = ' ' || c = '\t' then incr i
    else if c = 'c' && !i + 1 < n && s.[!i + 1] = '"' then begin
      (* c"..." byte string with OCaml-style escapes (Printf %S) *)
      let buf = Buffer.create 16 in
      i := !i + 2;
      let fin = ref false in
      while not !fin do
        if !i >= n then fail lineno "unterminated byte string"
        else if s.[!i] = '"' then begin
          incr i;
          fin := true
        end
        else if s.[!i] = '\\' then begin
          if !i + 1 >= n then fail lineno "truncated escape";
          (match s.[!i + 1] with
          | 'n' ->
            Buffer.add_char buf '\n';
            i := !i + 2
          | 't' ->
            Buffer.add_char buf '\t';
            i := !i + 2
          | 'r' ->
            Buffer.add_char buf '\r';
            i := !i + 2
          | '\\' ->
            Buffer.add_char buf '\\';
            i := !i + 2
          | '"' ->
            Buffer.add_char buf '"';
            i := !i + 2
          | '\'' ->
            Buffer.add_char buf '\'';
            i := !i + 2
          | c when c >= '0' && c <= '9' ->
            if !i + 3 >= n + 1 then fail lineno "truncated decimal escape";
            let code = int_of_string (String.sub s (!i + 1) 3) in
            Buffer.add_char buf (Char.chr code);
            i := !i + 4
          | c -> fail lineno "unknown escape \\%c" c)
        end
        else begin
          Buffer.add_char buf s.[!i];
          incr i
        end
      done;
      toks := Tstring (Buffer.contents buf) :: !toks
    end
    else if is_word_char c then begin
      let start = !i in
      while !i < n && is_word_char s.[!i] do
        incr i
      done;
      toks := Tword (String.sub s start (!i - start)) :: !toks
    end
    else begin
      match c with
      | '(' | ')' | '[' | ']' | '{' | '}' | ',' | ':' | ';' | '=' ->
        toks := Tpunct c :: !toks;
        incr i
      | c -> fail lineno "unexpected character %C" c
    end
  done;
  List.rev !toks

(* ------------------------------------------------------------------ *)
(* Token-stream helpers                                                *)
(* ------------------------------------------------------------------ *)

type stream = { mutable toks : tok list; line : int }

let peek st = match st.toks with t :: _ -> Some t | [] -> None

let next st =
  match st.toks with
  | t :: rest ->
    st.toks <- rest;
    t
  | [] -> fail st.line "unexpected end of line"

let expect_word st =
  match next st with
  | Tword w -> w
  | _ -> fail st.line "expected a word"

let expect_punct st c =
  match next st with
  | Tpunct p when p = c -> ()
  | _ -> fail st.line "expected %C" c

let accept_punct st c =
  match peek st with
  | Some (Tpunct p) when p = c ->
    ignore (next st);
    true
  | _ -> false

let at_end st = st.toks = []

(* ------------------------------------------------------------------ *)
(* Types and values                                                    *)
(* ------------------------------------------------------------------ *)

let scalar_of_word st = function
  | "i1" -> Irtype.I1
  | "i8" -> Irtype.I8
  | "i16" -> Irtype.I16
  | "i32" -> Irtype.I32
  | "i64" -> Irtype.I64
  | "float" -> Irtype.F32
  | "double" -> Irtype.F64
  | "ptr" -> Irtype.Ptr
  | w -> fail st.line "unknown scalar type %S" w

let is_scalar_word = function
  | "i1" | "i8" | "i16" | "i32" | "i64" | "float" | "double" | "ptr" -> true
  | _ -> false

(* struct table built while parsing "%struct.x = type ..." headers *)
type env = { structs : (string, Irtype.mstruct) Hashtbl.t }

let rec parse_mty env st : Irtype.mty =
  if accept_punct st '[' then begin
    (* [N x mty] *)
    let n = int_of_string (expect_word st) in
    (match next st with
    | Tword "x" -> ()
    | _ -> fail st.line "expected 'x' in array type");
    let elem = parse_mty env st in
    expect_punct st ']';
    Irtype.MArray (elem, n)
  end
  else begin
    let w = expect_word st in
    if String.length w > 8 && String.sub w 0 8 = "%struct." then begin
      let tag = String.sub w 8 (String.length w - 8) in
      match Hashtbl.find_opt env.structs tag with
      | Some s -> Irtype.MStruct s
      | None -> fail st.line "unknown struct type %%struct.%s" tag
    end
    else Irtype.MScalar (scalar_of_word st w)
  end

let reg_of_word st w =
  if String.length w > 1 && w.[0] = '%' then
    match int_of_string_opt (String.sub w 1 (String.length w - 1)) with
    | Some r -> r
    | None -> fail st.line "bad register %S" w
  else fail st.line "expected a register, got %S" w

(* A value: %N | @name | null | <scalar> <number>.  Caller resolves
   whether @name is a global or a function. *)
let parse_value env ~globals ~funcs st : Instr.value =
  ignore env;
  let w = expect_word st in
  if w = "null" then Instr.Null
  else if w.[0] = '%' then Instr.Reg (reg_of_word st w)
  else if w.[0] = '@' then begin
    let name = String.sub w 1 (String.length w - 1) in
    if Hashtbl.mem funcs name then Instr.FuncAddr name
    else if Hashtbl.mem globals name then Instr.GlobalAddr name
    else
      (* forward reference: default to global; a second pass fixes
         function addresses *)
      Instr.GlobalAddr name
  end
  else if is_scalar_word w then begin
    let s = scalar_of_word st w in
    let lit = expect_word st in
    if Irtype.is_float_scalar s then Instr.ImmFloat (float_of_string lit, s)
    else Instr.ImmInt (Int64.of_string lit, s)
  end
  else fail st.line "expected a value, got %S" w

(* ------------------------------------------------------------------ *)
(* Opcode tables (inverse of Irprint's)                                *)
(* ------------------------------------------------------------------ *)

let binop_of_name = function
  | "add" -> Some Instr.Add
  | "sub" -> Some Instr.Sub
  | "mul" -> Some Instr.Mul
  | "sdiv" -> Some Instr.Sdiv
  | "udiv" -> Some Instr.Udiv
  | "srem" -> Some Instr.Srem
  | "urem" -> Some Instr.Urem
  | "shl" -> Some Instr.Shl
  | "lshr" -> Some Instr.Lshr
  | "ashr" -> Some Instr.Ashr
  | "and" -> Some Instr.And
  | "or" -> Some Instr.Or
  | "xor" -> Some Instr.Xor
  | "fadd" -> Some Instr.FAdd
  | "fsub" -> Some Instr.FSub
  | "fmul" -> Some Instr.FMul
  | "fdiv" -> Some Instr.FDiv
  | _ -> None

let icmp_of_name = function
  | "eq" -> Instr.Ieq
  | "ne" -> Instr.Ine
  | "slt" -> Instr.Islt
  | "sle" -> Instr.Isle
  | "sgt" -> Instr.Isgt
  | "sge" -> Instr.Isge
  | "ult" -> Instr.Iult
  | "ule" -> Instr.Iule
  | "ugt" -> Instr.Iugt
  | "uge" -> Instr.Iuge
  | c -> failwith ("irparse: unknown icmp " ^ c)

let fcmp_of_name = function
  | "oeq" -> Instr.Feq
  | "one" -> Instr.Fne
  | "olt" -> Instr.Flt
  | "ole" -> Instr.Fle
  | "ogt" -> Instr.Fgt
  | "oge" -> Instr.Fge
  | c -> failwith ("irparse: unknown fcmp " ^ c)

let cast_of_name = function
  | "trunc" -> Some Instr.Trunc
  | "zext" -> Some Instr.Zext
  | "sext" -> Some Instr.Sext
  | "fptrunc" -> Some Instr.Fptrunc
  | "fpext" -> Some Instr.Fpext
  | "fptosi" -> Some Instr.Fptosi
  | "sitofp" -> Some Instr.Sitofp
  | "fptoui" -> Some Instr.Fptoui
  | "uitofp" -> Some Instr.Uitofp
  | "ptrtoint" -> Some Instr.Ptrtoint
  | "inttoptr" -> Some Instr.Inttoptr
  | "bitcast" -> Some Instr.Bitcast
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Instructions                                                        *)
(* ------------------------------------------------------------------ *)

let parse_call env ~globals ~funcs st (result : Instr.reg option) : Instr.instr =
  (* call <ret|void> <callee>(args) *)
  let ret_w = expect_word st in
  let ret = if ret_w = "void" then None else Some (scalar_of_word st ret_w) in
  let callee_w = expect_word st in
  let callee =
    if callee_w.[0] = '@' then
      Instr.Direct (String.sub callee_w 1 (String.length callee_w - 1))
    else Instr.Indirect (Instr.Reg (reg_of_word st callee_w))
  in
  expect_punct st '(';
  let args = ref [] in
  if not (accept_punct st ')') then begin
    let rec loop () =
      let s = scalar_of_word st (expect_word st) in
      let v = parse_value env ~globals ~funcs st in
      args := (s, v) :: !args;
      if accept_punct st ',' then loop () else expect_punct st ')'
    in
    loop ()
  end;
  Instr.Call (result, ret, callee, List.rev !args)

let parse_gep_indices env ~globals ~funcs st : Instr.gep_index list =
  expect_punct st '[';
  let indices = ref [] in
  if not (accept_punct st ']') then begin
    let rec loop () =
      (match expect_word st with
      | "field" ->
        let idx = int_of_string (expect_word st) in
        expect_punct st '(';
        let off_w = expect_word st in
        (* printed as (+N) *)
        let off = int_of_string off_w in
        expect_punct st ')';
        indices := Instr.Gfield (idx, off) :: !indices
      | "idx" ->
        let v = parse_value env ~globals ~funcs st in
        let stride_w = expect_word st in
        if String.length stride_w < 2 || stride_w.[0] <> 'x' then
          fail st.line "expected xN stride, got %S" stride_w;
        let stride = int_of_string (String.sub stride_w 1 (String.length stride_w - 1)) in
        indices := Instr.Gindex (v, stride) :: !indices
      | w -> fail st.line "expected gep index, got %S" w);
      if accept_punct st ',' then loop () else expect_punct st ']'
    in
    loop ()
  end;
  List.rev !indices

let parse_instr env ~globals ~funcs st : Instr.instr =
  let value () = parse_value env ~globals ~funcs st in
  let first = expect_word st in
  if first.[0] = '%' then begin
    (* %N = <op> ... *)
    let r = reg_of_word st first in
    expect_punct st '=';
    let op = expect_word st in
    match op with
    | "alloca" -> Instr.Alloca (r, parse_mty env st)
    | "load" ->
      let s = scalar_of_word st (expect_word st) in
      expect_punct st ',';
      Instr.Load (r, s, value ())
    | "gep" ->
      let base = value () in
      Instr.Gep (r, base, parse_gep_indices env ~globals ~funcs st)
    | "icmp" ->
      let cmp = icmp_of_name (expect_word st) in
      let s = scalar_of_word st (expect_word st) in
      let a = value () in
      expect_punct st ',';
      Instr.Icmp (r, cmp, s, a, value ())
    | "fcmp" ->
      let cmp = fcmp_of_name (expect_word st) in
      let s = scalar_of_word st (expect_word st) in
      let a = value () in
      expect_punct st ',';
      Instr.Fcmp (r, cmp, s, a, value ())
    | "select" ->
      let s = scalar_of_word st (expect_word st) in
      let c = value () in
      expect_punct st ',';
      let a = value () in
      expect_punct st ',';
      Instr.Select (r, s, c, a, value ())
    | "phi" ->
      let s = scalar_of_word st (expect_word st) in
      let incoming = ref [] in
      let rec loop () =
        expect_punct st '[';
        let label = expect_word st in
        expect_punct st ':';
        let v = value () in
        expect_punct st ']';
        incoming := (label, v) :: !incoming;
        if accept_punct st ',' then loop ()
      in
      loop ();
      Instr.Phi (r, s, List.rev !incoming)
    | "call" -> parse_call env ~globals ~funcs st (Some r)
    | op -> begin
      match (binop_of_name op, cast_of_name op) with
      | Some bop, _ ->
        let s = scalar_of_word st (expect_word st) in
        let a = value () in
        expect_punct st ',';
        Instr.Binop (r, bop, s, a, value ())
      | None, Some cop ->
        let from = scalar_of_word st (expect_word st) in
        let v = value () in
        (match next st with
        | Tword "to" -> ()
        | _ -> fail st.line "expected 'to' in cast");
        let into = scalar_of_word st (expect_word st) in
        Instr.Cast (r, cop, from, into, v)
      | None, None -> fail st.line "unknown opcode %S" op
    end
  end
  else begin
    match first with
    | "store" ->
      let s = scalar_of_word st (expect_word st) in
      let v = value () in
      expect_punct st ',';
      Instr.Store (s, v, value ())
    | "call" -> parse_call env ~globals ~funcs st None
    | "sancheck" ->
      let kind =
        match expect_word st with
        | "load" -> Instr.AccLoad
        | "store" -> Instr.AccStore
        | w -> fail st.line "unknown sancheck kind %S" w
      in
      let p = value () in
      expect_punct st ',';
      let size = int_of_string (expect_word st) in
      Instr.Sancheck (kind, p, size)
    | "loc" ->
      let line = int_of_string (expect_word st) in
      expect_punct st ':';
      let col = int_of_string (expect_word st) in
      Instr.Srcloc (line, col)
    | w -> fail st.line "unknown instruction %S" w
  end

let parse_terminator env ~globals ~funcs st : Instr.terminator =
  let value () = parse_value env ~globals ~funcs st in
  match expect_word st with
  | "ret" -> begin
    match peek st with
    | Some (Tword "void") ->
      ignore (next st);
      Instr.Ret None
    | _ ->
      let s = scalar_of_word st (expect_word st) in
      Instr.Ret (Some (s, value ()))
  end
  | "br" -> begin
    (* "br label" or "br <value>, a, b" *)
    let first = value () in
    match first with
    | Instr.GlobalAddr _ | Instr.FuncAddr _ ->
      fail st.line "branch target cannot be an address"
    | Instr.Reg _ | Instr.ImmInt _ | Instr.Null | Instr.ImmFloat _ ->
      if at_end st then begin
        (* plain branch printed the label as a bare word; the value
           parser consumed it only if it looked like a value — labels
           are bare words, so re-handle that case below *)
        fail st.line "internal: branch parse"
      end
      else begin
        expect_punct st ',';
        let a = expect_word st in
        expect_punct st ',';
        let b = expect_word st in
        Instr.Condbr (first, a, b)
      end
  end
  | "switch" ->
    let v = value () in
    expect_punct st ',';
    (match expect_word st with
    | "default" -> ()
    | w -> fail st.line "expected 'default', got %S" w);
    let default = expect_word st in
    expect_punct st '[';
    let cases = ref [] in
    if not (accept_punct st ']') then begin
      let rec loop () =
        let k = Int64.of_string (expect_word st) in
        expect_punct st ':';
        let label = expect_word st in
        cases := (k, label) :: !cases;
        if accept_punct st ';' then loop () else expect_punct st ']'
      in
      loop ()
    end;
    Instr.Switch (v, List.rev !cases, default)
  | "unreachable" -> Instr.Unreachable
  | w -> fail st.line "unknown terminator %S" w

(* "br label" prints the label as a bare word that the value parser
   cannot mistake for a value, so handle plain branches before the
   general path. *)
let parse_terminator_line env ~globals ~funcs lineno toks : Instr.terminator =
  match toks with
  | [ Tword "br"; Tword label ]
    when label.[0] <> '%' && label.[0] <> '@' && label <> "null" ->
    Instr.Br label
  | _ -> parse_terminator env ~globals ~funcs { toks; line = lineno }

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)
(* ------------------------------------------------------------------ *)

let rec parse_ginit env st : Irmod.ginit =
  match peek st with
  | Some (Tstring s) ->
    ignore (next st);
    Irmod.Gstring s
  | Some (Tpunct '[') ->
    ignore (next st);
    let items = ref [] in
    if not (accept_punct st ']') then begin
      let rec loop () =
        items := parse_ginit env st :: !items;
        if accept_punct st ',' then loop () else expect_punct st ']'
      in
      loop ()
    end;
    Irmod.Garray (List.rev !items)
  | Some (Tpunct '{') ->
    ignore (next st);
    let items = ref [] in
    if not (accept_punct st '}') then begin
      let rec loop () =
        items := parse_ginit env st :: !items;
        if accept_punct st ',' then loop () else expect_punct st '}'
      in
      loop ()
    end;
    Irmod.Gstruct_init (List.rev !items)
  | Some (Tword w) -> begin
    ignore (next st);
    if w = "zeroinitializer" then Irmod.Gzero
    else if w.[0] = '@' then
      (* resolved to func/global in a fixup pass *)
      Irmod.Gglobal_addr (String.sub w 1 (String.length w - 1))
    else begin
      match Int64.of_string_opt w with
      | Some v -> Irmod.Gint v
      | None -> begin
        match float_of_string_opt w with
        | Some f -> Irmod.Gfloat f
        | None -> fail st.line "bad initializer literal %S" w
      end
    end
  end
  | _ -> fail st.line "expected a global initializer"

(* ------------------------------------------------------------------ *)
(* Top level                                                           *)
(* ------------------------------------------------------------------ *)

let parse (text : string) : Irmod.t =
  let env = { structs = Hashtbl.create 8 } in
  let m = Irmod.create () in
  let globals = Hashtbl.create 32 in
  let funcs = Hashtbl.create 32 in
  let lines = String.split_on_char '\n' text in
  (* Pre-scan for function names so calls and @refs resolve. *)
  List.iteri
    (fun i line ->
      let line = String.trim line in
      let grab_name prefix =
        (* "define ret @name(" / "declare ret @name(" *)
        ignore prefix;
        match String.index_opt line '@' with
        | Some at ->
          let stop =
            match String.index_from_opt line at '(' with
            | Some p -> p
            | None -> String.length line
          in
          Some (String.sub line (at + 1) (stop - at - 1))
        | None -> None
      in
      ignore i;
      if String.length line > 7 && String.sub line 0 7 = "define " then
        Option.iter (fun n -> Hashtbl.replace funcs n ()) (grab_name "define")
      else if String.length line > 8 && String.sub line 0 8 = "declare " then
        Option.iter (fun n -> Hashtbl.replace funcs n ()) (grab_name "declare"))
    lines;
  (* Main pass. *)
  let current : Irfunc.t option ref = ref None in
  let current_block : Irfunc.block option ref = ref None in
  let pending_instrs : Instr.instr list ref = ref [] in
  let flush_block lineno =
    match (!current, !current_block) with
    | Some f, Some b ->
      b.Irfunc.instrs <- List.rev !pending_instrs;
      pending_instrs := [];
      f.Irfunc.blocks <- f.Irfunc.blocks @ [ b ];
      current_block := None
    | _, Some _ -> fail lineno "block outside a function"
    | _, None -> ()
  in
  List.iteri
    (fun idx raw ->
      let lineno = idx + 1 in
      let line = String.trim raw in
      if line = "" then ()
      else if String.length line > 8 && String.sub line 0 8 = "%struct."
              && String.length (String.trim raw) > 0
              && String.contains line '=' then begin
        (* %struct.tag = type { fields } size N align M *)
        let st = { toks = tokenize_line lineno line; line = lineno } in
        let head = expect_word st in
        let tag = String.sub head 8 (String.length head - 8) in
        expect_punct st '=';
        (match expect_word st with
        | "type" -> ()
        | w -> fail lineno "expected 'type', got %S" w);
        expect_punct st '{';
        let fields = ref [] in
        if not (accept_punct st '}') then begin
          let rec loop () =
            let fty = parse_mty env st in
            let fname = expect_word st in
            let off_w = expect_word st in
            if off_w.[0] <> '@' then fail lineno "expected @offset";
            let off = int_of_string (String.sub off_w 1 (String.length off_w - 1)) in
            fields :=
              { Irtype.mf_name = fname; mf_ty = fty; mf_off = off } :: !fields;
            if accept_punct st ',' then loop () else expect_punct st '}'
          in
          loop ()
        end;
        (match expect_word st with
        | "size" -> ()
        | w -> fail lineno "expected 'size', got %S" w);
        let size = int_of_string (expect_word st) in
        (match expect_word st with
        | "align" -> ()
        | w -> fail lineno "expected 'align', got %S" w);
        let align = int_of_string (expect_word st) in
        Hashtbl.replace env.structs tag
          { Irtype.s_tag = tag; s_fields = List.rev !fields; s_size = size;
            s_align = align }
      end
      else if line.[0] = '@' then begin
        (* @name = global <mty> <init> *)
        let st = { toks = tokenize_line lineno line; line = lineno } in
        let name_w = expect_word st in
        let name = String.sub name_w 1 (String.length name_w - 1) in
        expect_punct st '=';
        (match expect_word st with
        | "global" -> ()
        | w -> fail lineno "expected 'global', got %S" w);
        let gty = parse_mty env st in
        let ginit = parse_ginit env st in
        Hashtbl.replace globals name ();
        Irmod.add_global m { Irmod.g_name = name; g_ty = gty; g_init = ginit }
      end
      else if String.length line > 8 && String.sub line 0 8 = "declare " then begin
        let st =
          { toks = tokenize_line lineno (String.sub line 8 (String.length line - 8));
            line = lineno }
        in
        let ret_w = expect_word st in
        let e_ret = if ret_w = "void" then None else Some (scalar_of_word st ret_w) in
        let name_w = expect_word st in
        let e_name = String.sub name_w 1 (String.length name_w - 1) in
        expect_punct st '(';
        let params = ref [] in
        let variadic = ref false in
        if not (accept_punct st ')') then begin
          let rec loop () =
            (match expect_word st with
            | "..." -> variadic := true
            | w -> params := scalar_of_word st w :: !params);
            if accept_punct st ',' then loop () else expect_punct st ')'
          in
          loop ()
        end;
        Irmod.add_extern m
          { Irmod.e_name; e_ret; e_params = List.rev !params;
            e_variadic = !variadic }
      end
      else if String.length line > 7 && String.sub line 0 7 = "define " then begin
        let st =
          { toks = tokenize_line lineno (String.sub line 7 (String.length line - 7));
            line = lineno }
        in
        let ret_w = expect_word st in
        let ret = if ret_w = "void" then None else Some (scalar_of_word st ret_w) in
        let name_w = expect_word st in
        let name = String.sub name_w 1 (String.length name_w - 1) in
        expect_punct st '(';
        let params = ref [] in
        let variadic = ref false in
        if not (accept_punct st ')') then begin
          let rec loop () =
            match peek st with
            | Some (Tword "...") ->
              ignore (next st);
              variadic := true;
              expect_punct st ')'
            | _ ->
              let s = scalar_of_word st (expect_word st) in
              let r = reg_of_word st (expect_word st) in
              params := (r, s) :: !params;
              if accept_punct st ',' then loop () else expect_punct st ')'
          in
          loop ()
        end;
        expect_punct st '{';
        current :=
          Some
            {
              Irfunc.name;
              params = List.rev !params;
              ret;
              variadic = !variadic;
              blocks = [];
              next_reg = 0;
              src_pos = (lineno, 0);
              src_file = "<ir>";
            }
      end
      else if line = "}" then begin
        flush_block lineno;
        match !current with
        | Some f ->
          (* recompute next_reg from defs *)
          let max_reg = ref (-1) in
          List.iter (fun (r, _) -> max_reg := max !max_reg r) f.Irfunc.params;
          Irfunc.iter_instrs f (fun _ i ->
              match Instr.def_of i with
              | Some r -> max_reg := max !max_reg r
              | None -> ());
          f.Irfunc.next_reg <- !max_reg + 1;
          Irmod.add_func m f;
          current := None
        | None -> fail lineno "stray '}'"
      end
      else if String.length line > 1 && line.[String.length line - 1] = ':'
              && not (String.contains line ' ') then begin
        flush_block lineno;
        current_block :=
          Some
            {
              Irfunc.label = String.sub line 0 (String.length line - 1);
              instrs = [];
              term = Instr.Unreachable;
            }
      end
      else begin
        (* an instruction or terminator inside the current block *)
        match !current_block with
        | None -> fail lineno "instruction outside a block: %s" line
        | Some b -> begin
          let toks = tokenize_line lineno line in
          let is_term =
            match toks with
            | Tword ("ret" | "br" | "switch" | "unreachable") :: _ -> true
            | _ -> false
          in
          if is_term then
            b.Irfunc.term <- parse_terminator_line env ~globals ~funcs lineno toks
          else
            pending_instrs :=
              parse_instr env ~globals ~funcs { toks; line = lineno }
              :: !pending_instrs
        end
      end)
    lines;
  (* fix up @refs that name functions but were defaulted to globals *)
  let fix_value v =
    match v with
    | Instr.GlobalAddr n when Hashtbl.mem funcs n && not (Hashtbl.mem globals n)
      ->
      Instr.FuncAddr n
    | v -> v
  in
  List.iter
    (fun f ->
      Irfunc.rewrite_blocks f (fun b ->
          List.map
            (fun i ->
              match i with
              | Instr.Load (r, s, p) -> Instr.Load (r, s, fix_value p)
              | Instr.Store (s, v, p) -> Instr.Store (s, fix_value v, fix_value p)
              | Instr.Gep (r, base, idx) ->
                Instr.Gep
                  ( r,
                    fix_value base,
                    List.map
                      (function
                        | Instr.Gindex (v, st) -> Instr.Gindex (fix_value v, st)
                        | g -> g)
                      idx )
              | Instr.Binop (r, op, s, a, b2) ->
                Instr.Binop (r, op, s, fix_value a, fix_value b2)
              | Instr.Icmp (r, op, s, a, b2) ->
                Instr.Icmp (r, op, s, fix_value a, fix_value b2)
              | Instr.Fcmp (r, op, s, a, b2) ->
                Instr.Fcmp (r, op, s, fix_value a, fix_value b2)
              | Instr.Cast (r, op, from, into, v) ->
                Instr.Cast (r, op, from, into, fix_value v)
              | Instr.Select (r, s, c, a, b2) ->
                Instr.Select (r, s, fix_value c, fix_value a, fix_value b2)
              | Instr.Call (r, ret, callee, args) ->
                let callee =
                  match callee with
                  | Instr.Indirect v -> Instr.Indirect (fix_value v)
                  | c -> c
                in
                Instr.Call (r, ret, callee, List.map (fun (s, v) -> (s, fix_value v)) args)
              | Instr.Phi (r, s, inc) ->
                Instr.Phi (r, s, List.map (fun (l, v) -> (l, fix_value v)) inc)
              | Instr.Sancheck (k, p, size) -> Instr.Sancheck (k, fix_value p, size)
              | (Instr.Alloca _ | Instr.Srcloc _) -> i)
            b.Irfunc.instrs);
      List.iter
        (fun (b : Irfunc.block) ->
          b.Irfunc.term <-
            (match b.Irfunc.term with
            | Instr.Ret (Some (s, v)) -> Instr.Ret (Some (s, fix_value v))
            | Instr.Condbr (c, x, y) -> Instr.Condbr (fix_value c, x, y)
            | Instr.Switch (v, cases, d) -> Instr.Switch (fix_value v, cases, d)
            | t -> t))
        f.Irfunc.blocks)
    m.Irmod.funcs;
  (* ginit @refs to functions *)
  let rec fix_ginit g =
    match g with
    | Irmod.Gglobal_addr n when Hashtbl.mem funcs n && not (Hashtbl.mem globals n)
      ->
      Irmod.Gfunc_addr n
    | Irmod.Garray xs -> Irmod.Garray (List.map fix_ginit xs)
    | Irmod.Gstruct_init xs -> Irmod.Gstruct_init (List.map fix_ginit xs)
    | g -> g
  in
  m.Irmod.globals <-
    List.map
      (fun (g : Irmod.global) -> { g with Irmod.g_init = fix_ginit g.Irmod.g_init })
      m.Irmod.globals;
  m
