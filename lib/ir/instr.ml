(** Values, instructions and terminators of the IR.

    The IR is register-based and produced in the style of Clang -O0
    output: every C local is an [Alloca]; reads and writes go through
    [Load]/[Store]; [Mem2reg] later promotes them.  Pointer arithmetic is
    expressed with [Gep], whose indices carry the already-resolved strides
    and field offsets, so every engine computes byte offsets the same
    way. *)

type reg = int

type value =
  | Reg of reg
  | ImmInt of int64 * Irtype.scalar  (** normalized to its width *)
  | ImmFloat of float * Irtype.scalar
  | Null
  | GlobalAddr of string
  | FuncAddr of string

type binop =
  | Add | Sub | Mul | Sdiv | Udiv | Srem | Urem
  | Shl | Lshr | Ashr | And | Or | Xor
  | FAdd | FSub | FMul | FDiv

type icmp = Ieq | Ine | Islt | Isle | Isgt | Isge | Iult | Iule | Iugt | Iuge
type fcmp = Feq | Fne | Flt | Fle | Fgt | Fge

type cast =
  | Trunc | Zext | Sext
  | Fptrunc | Fpext
  | Fptosi | Sitofp | Fptoui | Uitofp
  | Ptrtoint | Inttoptr
  | Bitcast  (** same-width reinterpretation, e.g. i64 <-> f64 *)

type gep_index =
  | Gfield of int * int
      (** (field index, byte offset): step into a struct field *)
  | Gindex of value * int
      (** (index, element byte size): array/pointer element step *)

type callee = Direct of string | Indirect of value

(** Memory access kind for sanitizer check pseudo-instructions. *)
type access_kind = AccLoad | AccStore

type instr =
  | Alloca of reg * Irtype.mty
  | Load of reg * Irtype.scalar * value
  | Store of Irtype.scalar * value * value  (** (ty, stored value, ptr) *)
  | Gep of reg * value * gep_index list
  | Binop of reg * binop * Irtype.scalar * value * value
  | Icmp of reg * icmp * Irtype.scalar * value * value
  | Fcmp of reg * fcmp * Irtype.scalar * value * value
  | Cast of reg * cast * Irtype.scalar * Irtype.scalar * value
      (** (result, op, from, to, v) *)
  | Call of reg option * Irtype.scalar option * callee * (Irtype.scalar * value) list
      (** (result, return type, callee, typed args) *)
  | Select of reg * Irtype.scalar * value * value * value
  | Phi of reg * Irtype.scalar * (string * value) list
      (** (incoming block label, value) pairs *)
  | Sancheck of access_kind * value * int
      (** sanitizer check inserted by instrumentation: (kind, ptr, size);
          a no-op except under the ASan engine *)
  | Srcloc of int * int
      (** source-provenance marker (line, col): the statement that
          produced the following instructions.  Executes as a free
          metadata update (never charged as a modeled operation, and
          excluded from static instruction counts) so bug reports can
          name the faulting C line without perturbing the cost model *)

type terminator =
  | Ret of (Irtype.scalar * value) option
  | Br of string
  | Condbr of value * string * string
  | Switch of value * (int64 * string) list * string
  | Unreachable

(** Registers defined by an instruction. *)
let def_of = function
  | Alloca (r, _)
  | Load (r, _, _)
  | Gep (r, _, _)
  | Binop (r, _, _, _, _)
  | Icmp (r, _, _, _, _)
  | Fcmp (r, _, _, _, _)
  | Cast (r, _, _, _, _)
  | Select (r, _, _, _, _)
  | Phi (r, _, _) ->
    Some r
  | Call (r, _, _, _) -> r
  | Store _ | Sancheck _ | Srcloc _ -> None

(** Values read by an instruction (for liveness / DCE). *)
let uses_of = function
  | Alloca _ -> []
  | Load (_, _, p) -> [ p ]
  | Store (_, v, p) -> [ v; p ]
  | Gep (_, base, idx) ->
    base
    :: List.filter_map (function Gindex (v, _) -> Some v | Gfield _ -> None) idx
  | Binop (_, _, _, a, b) | Icmp (_, _, _, a, b) | Fcmp (_, _, _, a, b) ->
    [ a; b ]
  | Cast (_, _, _, _, v) -> [ v ]
  | Call (_, _, callee, args) ->
    let base = match callee with Indirect v -> [ v ] | Direct _ -> [] in
    base @ List.map snd args
  | Select (_, _, c, a, b) -> [ c; a; b ]
  | Phi (_, _, incoming) -> List.map snd incoming
  | Sancheck (_, p, _) -> [ p ]
  | Srcloc _ -> []

let term_uses = function
  | Ret (Some (_, v)) -> [ v ]
  | Ret None -> []
  | Br _ -> []
  | Condbr (v, _, _) -> [ v ]
  | Switch (v, _, _) -> [ v ]
  | Unreachable -> []

let term_successors = function
  | Ret _ | Unreachable -> []
  | Br l -> [ l ]
  | Condbr (_, a, b) -> [ a; b ]
  | Switch (_, cases, default) -> default :: List.map snd cases

(** Does this instruction have side effects that must be preserved even
    when its result is unused?  Under *safe* semantics (Safe Sulong's
    compiler), loads and stores can trap and are therefore side-effecting;
    under *UB* semantics (Clang-style), an unused load or a store to dead
    memory can be deleted.  The optimizer passes make this distinction
    explicitly; this predicate is the conservative safe-semantics one. *)
let has_side_effect = function
  | Store _ | Call _ | Sancheck _ -> true
  | Load _ -> true
  | Alloca _ | Gep _ | Binop _ | Icmp _ | Fcmp _ | Cast _ | Select _ | Phi _
  | Srcloc _ ->
    false
