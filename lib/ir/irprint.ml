(** Textual dump of the IR, LLVM-flavoured, for debugging and tests. *)

open Instr

let value_to_string = function
  | Reg r -> Printf.sprintf "%%%d" r
  | ImmInt (v, s) -> Printf.sprintf "%s %Ld" (Irtype.scalar_to_string s) v
  | ImmFloat (f, s) -> Printf.sprintf "%s %g" (Irtype.scalar_to_string s) f
  | Null -> "null"
  | GlobalAddr g -> "@" ^ g
  | FuncAddr f -> "@" ^ f

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul"
  | Sdiv -> "sdiv" | Udiv -> "udiv" | Srem -> "srem" | Urem -> "urem"
  | Shl -> "shl" | Lshr -> "lshr" | Ashr -> "ashr"
  | And -> "and" | Or -> "or" | Xor -> "xor"
  | FAdd -> "fadd" | FSub -> "fsub" | FMul -> "fmul" | FDiv -> "fdiv"

let icmp_name = function
  | Ieq -> "eq" | Ine -> "ne"
  | Islt -> "slt" | Isle -> "sle" | Isgt -> "sgt" | Isge -> "sge"
  | Iult -> "ult" | Iule -> "ule" | Iugt -> "ugt" | Iuge -> "uge"

let fcmp_name = function
  | Feq -> "oeq" | Fne -> "one"
  | Flt -> "olt" | Fle -> "ole" | Fgt -> "ogt" | Fge -> "oge"

let cast_name = function
  | Trunc -> "trunc" | Zext -> "zext" | Sext -> "sext"
  | Fptrunc -> "fptrunc" | Fpext -> "fpext"
  | Fptosi -> "fptosi" | Sitofp -> "sitofp"
  | Fptoui -> "fptoui" | Uitofp -> "uitofp"
  | Ptrtoint -> "ptrtoint" | Inttoptr -> "inttoptr"
  | Bitcast -> "bitcast"

let gep_index_to_string = function
  | Gfield (i, off) -> Printf.sprintf "field %d (+%d)" i off
  | Gindex (v, stride) -> Printf.sprintf "idx %s x%d" (value_to_string v) stride

let instr_to_string i =
  let v = value_to_string in
  match i with
  | Alloca (r, mty) ->
    Printf.sprintf "%%%d = alloca %s" r (Irtype.mty_to_string mty)
  | Load (r, s, p) ->
    Printf.sprintf "%%%d = load %s, %s" r (Irtype.scalar_to_string s) (v p)
  | Store (s, x, p) ->
    Printf.sprintf "store %s %s, %s" (Irtype.scalar_to_string s) (v x) (v p)
  | Gep (r, base, idx) ->
    Printf.sprintf "%%%d = gep %s [%s]" r (v base)
      (String.concat ", " (List.map gep_index_to_string idx))
  | Binop (r, op, s, a, b) ->
    Printf.sprintf "%%%d = %s %s %s, %s" r (binop_name op)
      (Irtype.scalar_to_string s) (v a) (v b)
  | Icmp (r, op, s, a, b) ->
    Printf.sprintf "%%%d = icmp %s %s %s, %s" r (icmp_name op)
      (Irtype.scalar_to_string s) (v a) (v b)
  | Fcmp (r, op, s, a, b) ->
    Printf.sprintf "%%%d = fcmp %s %s %s, %s" r (fcmp_name op)
      (Irtype.scalar_to_string s) (v a) (v b)
  | Cast (r, op, from, into, x) ->
    Printf.sprintf "%%%d = %s %s %s to %s" r (cast_name op)
      (Irtype.scalar_to_string from) (v x) (Irtype.scalar_to_string into)
  | Call (r, ret, callee, args) ->
    let callee_s =
      match callee with Direct f -> "@" ^ f | Indirect x -> v x
    in
    let args_s =
      String.concat ", "
        (List.map
           (fun (s, x) -> Irtype.scalar_to_string s ^ " " ^ v x)
           args)
    in
    let ret_s =
      match ret with Some s -> Irtype.scalar_to_string s | None -> "void"
    in
    (match r with
    | Some r -> Printf.sprintf "%%%d = call %s %s(%s)" r ret_s callee_s args_s
    | None -> Printf.sprintf "call %s %s(%s)" ret_s callee_s args_s)
  | Select (r, s, c, a, b) ->
    Printf.sprintf "%%%d = select %s %s, %s, %s" r (Irtype.scalar_to_string s)
      (v c) (v a) (v b)
  | Phi (r, s, incoming) ->
    Printf.sprintf "%%%d = phi %s %s" r (Irtype.scalar_to_string s)
      (String.concat ", "
         (List.map (fun (l, x) -> Printf.sprintf "[%s: %s]" l (v x)) incoming))
  | Sancheck (kind, p, size) ->
    Printf.sprintf "sancheck %s %s, %d"
      (match kind with AccLoad -> "load" | AccStore -> "store")
      (v p) size
  | Srcloc (line, col) -> Printf.sprintf "loc %d:%d" line col

let term_to_string = function
  | Ret (Some (s, x)) ->
    Printf.sprintf "ret %s %s" (Irtype.scalar_to_string s) (value_to_string x)
  | Ret None -> "ret void"
  | Br l -> "br " ^ l
  | Condbr (c, a, b) ->
    Printf.sprintf "br %s, %s, %s" (value_to_string c) a b
  | Switch (x, cases, default) ->
    Printf.sprintf "switch %s, default %s [%s]" (value_to_string x) default
      (String.concat "; "
         (List.map (fun (v, l) -> Printf.sprintf "%Ld: %s" v l) cases))
  | Unreachable -> "unreachable"

let func_to_string (f : Irfunc.t) =
  let buf = Buffer.create 512 in
  let params =
    String.concat ", "
      (List.map
         (fun (r, s) -> Printf.sprintf "%s %%%d" (Irtype.scalar_to_string s) r)
         f.Irfunc.params)
  in
  let ret =
    match f.Irfunc.ret with
    | Some s -> Irtype.scalar_to_string s
    | None -> "void"
  in
  Buffer.add_string buf
    (Printf.sprintf "define %s @%s(%s%s) {\n" ret f.Irfunc.name params
       (if f.Irfunc.variadic then ", ..." else ""));
  List.iter
    (fun (b : Irfunc.block) ->
      Buffer.add_string buf (b.label ^ ":\n");
      List.iter
        (fun i -> Buffer.add_string buf ("  " ^ instr_to_string i ^ "\n"))
        b.instrs;
      Buffer.add_string buf ("  " ^ term_to_string b.term ^ "\n"))
    f.Irfunc.blocks;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let rec ginit_to_string = function
  | Irmod.Gzero -> "zeroinitializer"
  | Irmod.Gint v -> Int64.to_string v
  | Irmod.Gfloat f -> string_of_float f
  | Irmod.Garray xs ->
    "[" ^ String.concat ", " (List.map ginit_to_string xs) ^ "]"
  | Irmod.Gstruct_init xs ->
    "{" ^ String.concat ", " (List.map ginit_to_string xs) ^ "}"
  | Irmod.Gstring s -> Printf.sprintf "c%S" s
  | Irmod.Gglobal_addr g -> "@" ^ g
  | Irmod.Gfunc_addr f -> "@" ^ f

(* Collect every struct type mentioned in the module (global types and
   alloca operands), so the dump is self-contained and re-parseable. *)
let collect_structs (m : Irmod.t) : Irtype.mstruct list =
  let seen = Hashtbl.create 8 in
  let order = ref [] in
  let rec walk (ty : Irtype.mty) =
    match ty with
    | Irtype.MScalar _ -> ()
    | Irtype.MArray (elem, _) -> walk elem
    | Irtype.MStruct s ->
      if not (Hashtbl.mem seen s.Irtype.s_tag) then begin
        Hashtbl.replace seen s.Irtype.s_tag ();
        List.iter (fun f -> walk f.Irtype.mf_ty) s.Irtype.s_fields;
        order := s :: !order
      end
  in
  List.iter (fun (g : Irmod.global) -> walk g.Irmod.g_ty) m.Irmod.globals;
  List.iter
    (fun f ->
      Irfunc.iter_instrs f (fun _ i ->
          match i with Instr.Alloca (_, mty) -> walk mty | _ -> ()))
    m.Irmod.funcs;
  List.rev !order

let mstruct_to_string (s : Irtype.mstruct) =
  Printf.sprintf "%%struct.%s = type { %s } size %d align %d" s.Irtype.s_tag
    (String.concat ", "
       (List.map
          (fun (f : Irtype.mfield) ->
            Printf.sprintf "%s %s @%d" (Irtype.mty_to_string f.Irtype.mf_ty)
              f.Irtype.mf_name f.Irtype.mf_off)
          s.Irtype.s_fields))
    s.Irtype.s_size s.Irtype.s_align

let module_to_string (m : Irmod.t) =
  let buf = Buffer.create 4096 in
  List.iter
    (fun s -> Buffer.add_string buf (mstruct_to_string s ^ "\n"))
    (collect_structs m);
  List.iter
    (fun (g : Irmod.global) ->
      Buffer.add_string buf
        (Printf.sprintf "@%s = global %s %s\n" g.g_name
           (Irtype.mty_to_string g.g_ty)
           (ginit_to_string g.g_init)))
    m.Irmod.globals;
  List.iter
    (fun (e : Irmod.extern_decl) ->
      let ret =
        match e.Irmod.e_ret with
        | Some s -> Irtype.scalar_to_string s
        | None -> "void"
      in
      Buffer.add_string buf
        (Printf.sprintf "declare %s @%s(%s%s)\n" ret e.e_name
           (String.concat ", " (List.map Irtype.scalar_to_string e.e_params))
           (if e.e_variadic then ", ..." else "")))
    m.Irmod.externs;
  List.iter
    (fun f -> Buffer.add_string buf ("\n" ^ func_to_string f))
    m.Irmod.funcs;
  Buffer.contents buf
