(** Imperative IR builder used by the lowering: tracks the current block
    of the function under construction and appends instructions. *)

type t = {
  func : Irfunc.t;
  mutable current : Irfunc.block;
  mutable finished : bool;
      (** true when the current block already has a real terminator *)
  mutable label_count : int;
}

let create_function ?(src_file = "<input>") ~name ~params ~ret ~variadic
    ~src_pos () : t =
  let entry =
    { Irfunc.label = "entry"; instrs = []; term = Instr.Unreachable }
  in
  let func =
    {
      Irfunc.name;
      params;
      ret;
      variadic;
      blocks = [ entry ];
      next_reg =
        (List.fold_left (fun acc (r, _) -> max acc (r + 1)) 0 params);
      src_pos;
      src_file;
    }
  in
  { func; current = entry; finished = false; label_count = 0 }

let fresh_reg b = Irfunc.fresh_reg b.func

let fresh_label b prefix =
  b.label_count <- b.label_count + 1;
  Printf.sprintf "%s%d" prefix b.label_count

(** Create (but do not switch to) a new empty block. *)
let new_block b label =
  let blk = { Irfunc.label; instrs = []; term = Instr.Unreachable } in
  b.func.Irfunc.blocks <- b.func.Irfunc.blocks @ [ blk ];
  blk

let switch_to b blk =
  b.current <- blk;
  b.finished <- false

let emit b instr =
  if not b.finished then
    b.current.Irfunc.instrs <- b.current.Irfunc.instrs @ [ instr ]

(** Set the current block's terminator (first one wins; code after a
    return in the C source is unreachable and dropped). *)
let terminate b term =
  if not b.finished then begin
    b.current.Irfunc.term <- term;
    b.finished <- true
  end

let current_label b = b.current.Irfunc.label

(* Typed emission helpers; each returns the result register as a value. *)

let alloca b mty =
  let r = fresh_reg b in
  emit b (Instr.Alloca (r, mty));
  Instr.Reg r

let load b scalar ptr =
  let r = fresh_reg b in
  emit b (Instr.Load (r, scalar, ptr));
  Instr.Reg r

let store b scalar v ptr = emit b (Instr.Store (scalar, v, ptr))

let gep b base indices =
  let r = fresh_reg b in
  emit b (Instr.Gep (r, base, indices));
  Instr.Reg r

let binop b op scalar a v =
  let r = fresh_reg b in
  emit b (Instr.Binop (r, op, scalar, a, v));
  Instr.Reg r

let icmp b op scalar a v =
  let r = fresh_reg b in
  emit b (Instr.Icmp (r, op, scalar, a, v));
  Instr.Reg r

let fcmp b op scalar a v =
  let r = fresh_reg b in
  emit b (Instr.Fcmp (r, op, scalar, a, v));
  Instr.Reg r

let cast b op ~from ~into v =
  let r = fresh_reg b in
  emit b (Instr.Cast (r, op, from, into, v));
  Instr.Reg r

let call b ret callee args =
  match ret with
  | None ->
    emit b (Instr.Call (None, None, callee, args));
    None
  | Some scalar ->
    let r = fresh_reg b in
    emit b (Instr.Call (Some r, Some scalar, callee, args));
    Some (Instr.Reg r)

let select b scalar c a v =
  let r = fresh_reg b in
  emit b (Instr.Select (r, scalar, c, a, v));
  Instr.Reg r

let phi b scalar incoming =
  let r = fresh_reg b in
  (* Phis must be at the head of the block. *)
  b.current.Irfunc.instrs <- Instr.Phi (r, scalar, incoming) :: b.current.Irfunc.instrs;
  Instr.Reg r

let finish b = b.func
