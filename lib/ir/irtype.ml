(** Types of the LLVM-like IR.

    Register values carry a [scalar] type.  Memory objects (allocas,
    globals, malloc'd blocks once typed) are described by [mty], a memory
    type with fully resolved layout: every struct field carries its byte
    offset, so the back ends never need the C-level layout rules.  This
    mirrors how Safe Sulong works off LLVM IR in which Clang has already
    resolved the layout. *)

type scalar =
  | I1   (** comparisons *)
  | I8
  | I16
  | I32
  | I64
  | F32
  | F64
  | Ptr  (** opaque pointer *)

type mty =
  | MScalar of scalar
  | MArray of mty * int
  | MStruct of mstruct

and mstruct = {
  s_tag : string;
  s_fields : mfield list;
  s_size : int;
  s_align : int;
}

and mfield = { mf_name : string; mf_ty : mty; mf_off : int }

let scalar_size = function
  | I1 -> 1
  | I8 -> 1
  | I16 -> 2
  | I32 -> 4
  | I64 -> 8
  | F32 -> 4
  | F64 -> 8
  | Ptr -> 8

let is_float_scalar = function F32 | F64 -> true | _ -> false
let is_int_scalar = function
  | I1 | I8 | I16 | I32 | I64 -> true
  | Ptr | F32 | F64 -> false

let rec mty_size = function
  | MScalar s -> scalar_size s
  | MArray (elem, n) -> mty_size elem * n
  | MStruct s -> s.s_size

let rec mty_align = function
  | MScalar s -> scalar_size s
  | MArray (elem, _) -> mty_align elem
  | MStruct s -> s.s_align

let scalar_to_string = function
  | I1 -> "i1"
  | I8 -> "i8"
  | I16 -> "i16"
  | I32 -> "i32"
  | I64 -> "i64"
  | F32 -> "float"
  | F64 -> "double"
  | Ptr -> "ptr"

let rec mty_to_string = function
  | MScalar s -> scalar_to_string s
  | MArray (elem, n) -> Printf.sprintf "[%d x %s]" n (mty_to_string elem)
  | MStruct s -> "%struct." ^ s.s_tag

(** Truncate / sign-extend an int64 so it is a valid value of scalar
    type [s] (canonical representation: sign-extended to 64 bits for
    signed widths; we store all integer registers as int64 and normalize
    through this on every write). *)
let normalize_int (s : scalar) (v : int64) : int64 =
  match s with
  | I1 -> if Int64.logand v 1L = 1L then 1L else 0L
  | I8 -> Int64.shift_right (Int64.shift_left v 56) 56
  | I16 -> Int64.shift_right (Int64.shift_left v 48) 48
  | I32 -> Int64.shift_right (Int64.shift_left v 32) 32
  | I64 | Ptr -> v
  | F32 | F64 -> invalid_arg "normalize_int on float type"

(** Defined float-to-integer conversion shared by the constant folder and
    both execution engines: truncation toward zero, NaN maps to 0, and
    values outside the i64 range saturate.  C leaves these cases
    undefined; what matters here is that every pipeline configuration
    agrees, otherwise folded and unfolded runs of a correct program
    diverge ([Int64.of_float] alone is unspecified on exactly these
    inputs).  Callers normalize the result to the destination width. *)
let float_to_int (f : float) : int64 =
  if f <> f then 0L
  else if f >= Int64.to_float Int64.max_int then Int64.max_int
  else if f <= Int64.to_float Int64.min_int then Int64.min_int
  else Int64.of_float f

(** Round a double to the nearest representable single-precision value
    (round-to-nearest-even, the IEEE default), by storing through
    binary32 bits and loading back.  This is the one definition shared
    by every engine — Fptrunc, F32 arithmetic, and int->F32 conversions
    all go through here. *)
let round_to_f32 (f : float) : float =
  Int32.float_of_bits (Int32.bits_of_float f)

(** Round an arithmetic result to the precision of its scalar type.
    C requires `float` operations to produce values rounded to single
    precision; computing in double and rounding each result is exact
    for [+ - * /] (no double rounding: each is correctly rounded in
    double, then correctly rounded to float, which for these operations
    equals direct single-precision evaluation per Figueroa's theorem on
    formats with >= 2p+2 significand bits). *)
let round_result (s : scalar) (f : float) : float =
  match s with F32 -> round_to_f32 f | _ -> f

(** Reinterpret [v] as an unsigned value of width [s] (zero-extended). *)
let unsigned_of (s : scalar) (v : int64) : int64 =
  match s with
  | I1 -> Int64.logand v 1L
  | I8 -> Int64.logand v 0xFFL
  | I16 -> Int64.logand v 0xFFFFL
  | I32 -> Int64.logand v 0xFFFFFFFFL
  | I64 | Ptr -> v
  | F32 | F64 -> invalid_arg "unsigned_of on float type"
