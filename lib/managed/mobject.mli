(** Managed C objects (paper §3.2–3.3): every C allocation is a managed
    object; every pointer is a pointee plus a byte offset; every load,
    store and free is automatically checked.

    See DESIGN.md for the representation note: objects are byte-backed
    with an unforgeable pointer-slot map, realizing the paper's relaxed
    type rules with byte-granular exactness. *)

type ptr =
  | Pnull
  | Pobj of addr
  | Pfunc of string
  | Pinvalid of int64  (** a cookie that matches no live object *)

and addr = { obj : t; moff : int }

and t = {
  id : int;
  storage : Merror.storage;
  byte_size : int;
  mty : Irtype.mty;  (** declared or observed type; used in messages *)
  mutable data : Bytes.t option;  (** [None] once freed *)
  mutable ptr_slots : (int, ptr) Hashtbl.t option;
      (** allocated on the first pointer store; [None] = no slot ever
          written *)
  mutable site : int;  (** allocation site, for allocation mementos *)
  mutable init_map : Bytes.t option;
      (** per-byte written? bitmap (uninitialized-read detection) *)
}

(** Opt-in detection of reads from never-written memory (paper §6
    future work, realized).  Set by [Interp.create ~detect_uninit]. *)
val track_uninitialized : bool ref

(** Reset the global object registry (between engine runs). *)
val reset : unit -> unit

(** A saved registry prefix.  [Interp.reset] captures one right after
    [create] and reinstalls it before each re-run so that object ids —
    observable through pointer cookies and error messages — replay
    identically across runs of the same prepared state. *)
type checkpoint

val checkpoint : unit -> checkpoint
val restore : checkpoint -> unit

(** Placeholder for unboxed pointer-register files (id 0, never handed
    out by allocation); reading through it is prevented structurally by
    the JIT's write-before-read rules, never checked dynamically. *)
val dummy : t

(** Allocate a managed object of [byte_size] bytes, zero-filled. *)
val alloc :
  ?site:int -> storage:Merror.storage -> mty:Irtype.mty -> int -> t

(** Consume the next allocation id without allocating.  Used by the
    closure compiler's scalar-replaced allocas: the virtual slot takes
    the id its real stack object would have taken, so the ids of every
    later allocation — observable through pointer cookies and error
    messages — replay exactly as in the interpreter. *)
val fresh_id : unit -> int

(** Mark a byte range as written (used by calloc and the loaders). *)
val mark_initialized : t -> off:int -> size:int -> unit

(** The paper's class-hierarchy names (I32HeapArray, ...), used in
    error messages. *)
val class_name : t -> string

(** Pointer <-> integer cookies (the tagged-pointer relaxation).
    [int_to_ptr] resolves only cookies of live registered objects or
    registered functions; anything else is [Pinvalid] and traps on use. *)
val ptr_to_int : ptr -> int64
val int_to_ptr : int64 -> ptr
val register_func_cookie : string -> int64
val register : t -> unit

(** Checked accesses.  Each raises [Merror.Error] on a bounds violation,
    a freed object, or (when enabled) an uninitialized read; the string
    is the report context ("in function f"). *)

val load_int : addr -> size:int -> string -> int64
val store_int : addr -> size:int -> int64 -> string -> unit
val load_float : addr -> size:int -> string -> float
val store_float : addr -> size:int -> float -> string -> unit
val load_ptr : addr -> string -> ptr
val store_ptr : addr -> ptr -> string -> unit

val is_freed : t -> bool

(** Checked [free] (paper Fig. 7–8): the pointee must be a live heap
    object and the offset must be zero. *)
val free_addr : addr -> string -> unit

(** Read a NUL-terminated string; every byte access is bounds-checked. *)
val read_cstring : addr -> string -> string

(** Write raw bytes (no NUL added). *)
val write_bytes : addr -> string -> string -> unit
