(** Managed C objects (paper §3.2–3.3).

    Every C allocation — automatic, dynamic, static, the [main] argument
    arrays, and the cells behind variadic arguments — is a [t]: a managed
    object the C program can never address outside of.  A pointer is an
    [addr]: a reference to its pointee plus a byte offset ([Address] in
    the paper's Fig. 5); pointer arithmetic only updates the offset, and
    every load/store/free checks

    - liveness  ([data = None] after [free]  → use-after-free),
    - bounds    (byte-granular               → out-of-bounds),
    - freeing   (storage class and offset    → invalid/double free).

    Representation note (documented in DESIGN.md): where the paper wraps
    each allocation in a typed Java array, we back each object with a
    byte buffer plus a pointer-slot map.  Pointers stored into memory live
    in [ptr_slots] as real [addr] values and are *unforgeable*: the byte
    image holds only a cookie, and reading a pointer back from raw bytes
    yields an address that traps unless the cookie matches a live object
    registered through an explicit pointer-to-integer conversion or
    pointer store.  This realizes the paper's relaxed type rules (bitwise
    int/float reinterpretation is allowed; conjuring a pointer out of
    integers is not) with byte-granular exactness for the checks that the
    evaluation measures. *)

type ptr =
  | Pnull
  | Pobj of addr
  | Pfunc of string
  | Pinvalid of int64  (** a cookie that matches no live object *)

and addr = { obj : t; moff : int }

and t = {
  id : int;
  storage : Merror.storage;
  byte_size : int;
  mty : Irtype.mty;  (** declared or observed type; used in messages *)
  mutable data : Bytes.t option;  (** [None] once freed *)
  mutable ptr_slots : (int, ptr) Hashtbl.t option;
      (** allocated on the first pointer store; [None] means no slot was
          ever written (the overwhelmingly common case for scalars) *)
  mutable site : int;  (** allocation site, for allocation mementos *)
  mutable init_map : Bytes.t option;
      (** per-byte written? bitmap; allocated only when uninitialized-read
          detection is on and the storage starts uninitialized *)
}

(** Opt-in detection of reads from never-written memory — the paper's §6
    "detection of reads from uninitialized memory" future work, realized.
    Off by default: real-world C (and most of the corpus) deliberately
    reads zero-initialized managed memory. *)
let track_uninitialized = ref false

(* ------------------------------------------------------------------ *)
(* Object registry: gives every object a pointer cookie so that
   ptrtoint/inttoptr round-trips work (tagged-pointer relaxation).      *)
(* ------------------------------------------------------------------ *)

(* Ids are handed out sequentially, so the registry is a flat array
   indexed by id (a hashtable here made every alloca pay a hashed
   insert into an ever-growing table — the single most expensive part
   of allocation).

   Registration is *lazy*: an object enters the registry the first time
   its cookie is materialized as an integer (an explicit ptrtoint cast,
   or a pointer store writing the cookie into a byte image), which is
   exactly the set of objects an integer->pointer conversion can ever
   legitimately name — see the relaxed type rules in the header comment.
   Everything else stays out, so the registry never pins short-lived
   stack objects: they die with their frame in the minor heap instead of
   being promoted and retained for the rest of the run.  A registered
   object is never unregistered: an int->ptr round trip of a freed
   object must still find it, so the later dereference reports a
   use-after-free, not a forged pointer. *)
let registry : t option array ref = ref (Array.make 1024 None)
let next_id = ref 1

let register obj =
  let arr = !registry in
  let n = Array.length arr in
  if obj.id >= n then begin
    let bigger = Array.make (max (2 * n) (obj.id + 1)) None in
    Array.blit arr 0 bigger 0 n;
    registry := bigger
  end;
  !registry.(obj.id) <- Some obj

let registered obj =
  let arr = !registry in
  obj.id < Array.length arr && Array.unsafe_get arr obj.id <> None

(** Reset the object registry (between engine runs). *)
let reset () =
  registry := Array.make 1024 None;
  next_id := 1

(** A saved registry prefix.  [Interp.reset] captures one right after
    [create] (registry = the module's globals) and reinstalls it before
    every re-run, so object ids — which are observable through pointer
    cookies and uninitialized-read messages — replay identically even if
    other engine states ran (and [reset] the registry) in between. *)
type checkpoint = { ck_next : int; ck_entries : t option array }

let checkpoint () =
  let n = !next_id in
  let entries = Array.make n None in
  let arr = !registry in
  for i = 0 to min (n - 1) (Array.length arr - 1) do
    entries.(i) <- arr.(i)
  done;
  { ck_next = n; ck_entries = entries }

let restore ck =
  let fresh = Array.make (max 1024 ck.ck_next) None in
  Array.blit ck.ck_entries 0 fresh 0 ck.ck_next;
  registry := fresh;
  next_id := ck.ck_next

let fresh_id () =
  let id = !next_id in
  incr next_id;
  id

let cookie_of_addr a =
  (* the cookie escapes to integer-land: the object must be findable by
     [int_to_ptr] from now on *)
  if not (registered a.obj) then register a.obj;
  Int64.logor (Int64.shift_left (Int64.of_int a.obj.id) 32)
    (Int64.of_int (a.moff land 0xFFFFFFFF))

let func_cookie_tag = 0x4000_0000_0000_0000L

let ptr_to_int = function
  | Pnull -> 0L
  | Pobj a -> cookie_of_addr a
  | Pfunc name ->
    (* function cookies: tag | hash; resolved through a side table *)
    Int64.logor func_cookie_tag (Int64.of_int (Hashtbl.hash name land 0xFFFFFF))
  | Pinvalid c -> c

(* Function-name side table for int->function-pointer round trips. *)
let func_cookies : (int64, string) Hashtbl.t = Hashtbl.create 16

let register_func_cookie name =
  let c = ptr_to_int (Pfunc name) in
  Hashtbl.replace func_cookies c name;
  c

let int_to_ptr (v : int64) : ptr =
  if v = 0L then Pnull
  else if Int64.logand v func_cookie_tag <> 0L then begin
    match Hashtbl.find_opt func_cookies v with
    | Some name -> Pfunc name
    | None -> Pinvalid v
  end
  else begin
    let id = Int64.to_int (Int64.shift_right_logical v 32) in
    let off = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
    let arr = !registry in
    if id >= 0 && id < Array.length arr then
      match Array.unsafe_get arr id with
      | Some obj -> Pobj { obj; moff = off }
      | None -> Pinvalid v
    else Pinvalid v
  end

(* ------------------------------------------------------------------ *)
(* Allocation                                                          *)
(* ------------------------------------------------------------------ *)

let alloc ?(site = -1) ~storage ~mty byte_size : t =
  let starts_initialized =
    match storage with
    | Merror.Global | Merror.MainArgs | Merror.Vararg -> true
    | Merror.Stack | Merror.Heap -> false
  in
  let obj =
    {
      id = fresh_id ();
      storage;
      byte_size;
      mty;
      data = Some (Bytes.make (max byte_size 0) '\000');
      ptr_slots = None;
      site;
      init_map =
        (if !track_uninitialized && not starts_initialized then
           Some (Bytes.make (max byte_size 0) '\000')
         else None);
    }
  in
  obj

(** Mark [size] bytes at [off] as written (calloc, global images, ...). *)
let mark_initialized obj ~off ~size =
  match obj.init_map with
  | Some m ->
    let lo = max 0 off and hi = min obj.byte_size (off + size) in
    if hi > lo then Bytes.fill m lo (hi - lo) '\001'
  | None -> ()

let check_initialized obj ~off ~size context =
  match obj.init_map with
  | None -> ()
  | Some m ->
    let rec scan i =
      if i < off + size then begin
        if i >= 0 && i < obj.byte_size && Bytes.get m i = '\000' then
          Merror.raise_error
            (Merror.Uninitialized_read { offset = off; size; storage = obj.storage })
            (Printf.sprintf "%s, object %d" context obj.id)
        else scan (i + 1)
      end
    in
    scan off

(** The paper's class-hierarchy names (I32HeapArray etc.), used in error
    messages so reports read like Safe Sulong's. *)
let class_name obj =
  let rec scalar_of = function
    | Irtype.MScalar s -> Irtype.scalar_to_string s
    | Irtype.MArray (t, _) -> scalar_of t
    | Irtype.MStruct s -> "struct." ^ s.Irtype.s_tag
  in
  let elem = String.capitalize_ascii (scalar_of obj.mty) in
  let loc =
    match obj.storage with
    | Merror.Stack -> "AutomaticArray"
    | Merror.Heap -> "HeapArray"
    | Merror.Global -> "StaticArray"
    | Merror.MainArgs -> "MainArgsArray"
    | Merror.Vararg -> "VarargObject"
  in
  elem ^ loc

(* ------------------------------------------------------------------ *)
(* Checked raw byte access                                             *)
(* ------------------------------------------------------------------ *)

let live_bytes obj context =
  match obj.data with
  | Some b -> b
  | None -> Merror.raise_error Merror.Use_after_free context

let check_bounds obj ~access ~off ~size context =
  if off < 0 || off + size > obj.byte_size then
    Merror.raise_error
      (Merror.Out_of_bounds
         { access; offset = off; size; obj_size = obj.byte_size;
           storage = obj.storage })
      (Printf.sprintf "%s, object %s" context (class_name obj))

(* Invalidate pointer slots overlapping [off, off+size): an integer
   store over a stored pointer turns it into raw data (it can come back
   through its cookie only). *)
let clobber_slots obj ~off ~size =
  match obj.ptr_slots with
  | None -> ()
  | Some slots ->
    if Hashtbl.length slots > 0 then begin
      let doomed =
        Hashtbl.fold
          (fun slot _ acc ->
            if slot < off + size && slot + 8 > off then slot :: acc else acc)
          slots []
      in
      List.iter (Hashtbl.remove slots) doomed
    end

(* ------------------------------------------------------------------ *)
(* Typed loads and stores                                              *)
(* ------------------------------------------------------------------ *)

let load_int (a : addr) ~(size : int) context : int64 =
  let b = live_bytes a.obj context in
  check_bounds a.obj ~access:Merror.Read ~off:a.moff ~size context;
  check_initialized a.obj ~off:a.moff ~size context;
  match size with
  | 1 -> Int64.of_int (Char.code (Bytes.get b a.moff))
  | 2 -> Int64.of_int (Bytes.get_uint16_le b a.moff)
  | 4 -> Int64.of_int32 (Bytes.get_int32_le b a.moff)
  | 8 -> Bytes.get_int64_le b a.moff
  | _ -> invalid_arg "Mobject.load_int: bad size"

let store_int (a : addr) ~(size : int) (v : int64) context : unit =
  let b = live_bytes a.obj context in
  check_bounds a.obj ~access:Merror.Write ~off:a.moff ~size context;
  clobber_slots a.obj ~off:a.moff ~size;
  mark_initialized a.obj ~off:a.moff ~size;
  match size with
  | 1 -> Bytes.set b a.moff (Char.chr (Int64.to_int (Int64.logand v 0xFFL)))
  | 2 -> Bytes.set_uint16_le b a.moff (Int64.to_int (Int64.logand v 0xFFFFL))
  | 4 -> Bytes.set_int32_le b a.moff (Int64.to_int32 v)
  | 8 -> Bytes.set_int64_le b a.moff v
  | _ -> invalid_arg "Mobject.store_int: bad size"

let load_float (a : addr) ~(size : int) context : float =
  let bits = load_int a ~size context in
  match size with
  | 4 -> Int32.float_of_bits (Int64.to_int32 bits)
  | 8 -> Int64.float_of_bits bits
  | _ -> invalid_arg "Mobject.load_float: bad size"

let store_float (a : addr) ~(size : int) (v : float) context : unit =
  let bits =
    match size with
    | 4 -> Int64.of_int32 (Int32.bits_of_float v)
    | 8 -> Int64.bits_of_float v
    | _ -> invalid_arg "Mobject.store_float: bad size"
  in
  store_int a ~size bits context

let load_ptr (a : addr) context : ptr =
  let b = live_bytes a.obj context in
  check_bounds a.obj ~access:Merror.Read ~off:a.moff ~size:8 context;
  check_initialized a.obj ~off:a.moff ~size:8 context;
  match
    match a.obj.ptr_slots with
    | None -> None
    | Some slots -> Hashtbl.find_opt slots a.moff
  with
  | Some p -> p
  | None ->
    (* Raw bytes read back as a pointer: resolves only through a valid
       cookie (relaxed type rule), otherwise it is a trapping pointer. *)
    int_to_ptr (Bytes.get_int64_le b a.moff)

let store_ptr (a : addr) (p : ptr) context : unit =
  let b = live_bytes a.obj context in
  check_bounds a.obj ~access:Merror.Write ~off:a.moff ~size:8 context;
  clobber_slots a.obj ~off:a.moff ~size:8;
  mark_initialized a.obj ~off:a.moff ~size:8;
  (match p with
  | Pnull -> ()
  | Pobj _ | Pfunc _ | Pinvalid _ ->
    let slots =
      match a.obj.ptr_slots with
      | Some slots -> slots
      | None ->
        let slots = Hashtbl.create 2 in
        a.obj.ptr_slots <- Some slots;
        slots
    in
    Hashtbl.replace slots a.moff p);
  (match p with
  | Pfunc name -> ignore (register_func_cookie name)
  | Pnull | Pobj _ | Pinvalid _ -> ());
  Bytes.set_int64_le b a.moff (ptr_to_int p)

(* ------------------------------------------------------------------ *)
(* Free (paper Fig. 7–8)                                               *)
(* ------------------------------------------------------------------ *)

let is_freed obj = obj.data = None

(** [free_addr p] implements the checked [free]: the pointee must be a
    heap object (the paper's ClassCastException to [HeapObject]), the
    offset must be zero, and the object must not already be freed. *)
let free_addr (a : addr) context : unit =
  if a.obj.storage <> Merror.Heap then
    Merror.raise_error
      (Merror.Invalid_free
         (Printf.sprintf "pointer to a %s object (%s) passed to free()"
            (Merror.storage_name a.obj.storage)
            (class_name a.obj)))
      context;
  if a.moff <> 0 then
    Merror.raise_error
      (Merror.Invalid_free
         (Printf.sprintf "pointer into the middle of an object (offset %d)"
            a.moff))
      context;
  if is_freed a.obj then Merror.raise_error Merror.Double_free context;
  a.obj.data <- None;
  a.obj.ptr_slots <- None

(* ------------------------------------------------------------------ *)
(* Bulk access helpers for builtins                                    *)
(* ------------------------------------------------------------------ *)

(** Read a NUL-terminated C string starting at [a]; every byte access is
    bounds-checked, so an unterminated string overflows exactly as it
    would in the interpreter. *)
let read_cstring (a : addr) context : string =
  let buf = Buffer.create 16 in
  let rec go off =
    let c = load_int { a with moff = a.moff + off } ~size:1 context in
    if c <> 0L then begin
      Buffer.add_char buf (Char.chr (Int64.to_int c));
      go (off + 1)
    end
  in
  go 0;
  Buffer.contents buf

(** A placeholder object for unboxed pointer-register files
    ([Jit.Closcomp]): constructed directly — never through [alloc] —
    because ids are observable (pointer cookies, uninitialized-read
    messages) and a dummy must not consume one.  Id 0 is never handed
    out by [fresh_id]. *)
let dummy : t =
  {
    id = 0;
    storage = Merror.Stack;
    byte_size = 0;
    mty = Irtype.MScalar Irtype.I8;
    data = Some Bytes.empty;
    ptr_slots = None;
    site = -1;
    init_map = None;
  }

let write_bytes (a : addr) (s : string) context : unit =
  String.iteri
    (fun i c ->
      store_int
        { a with moff = a.moff + i }
        ~size:1
        (Int64.of_int (Char.code c))
        context)
    s
