(** The managed heap: checked allocation plus allocation mementos
    (paper §3.3) and leak tracking (paper §6 extension). *)

type t = {
  site_types : (int, Irtype.scalar) Hashtbl.t;
  site_names : (int, string) Hashtbl.t;
  mutable live : Mobject.t list;
  mutable alloc_count : int;
  mutable alloc_bytes : int;
  mutable free_count : int;
  mutable live_bytes : int;
  mutable peak_bytes : int;  (** high-water mark of [live_bytes] *)
  mementos_enabled : bool;
}

val create : ?mementos:bool -> unit -> t

(** Record a readable name for an allocation site (leak reports). *)
val name_site : t -> site:int -> string -> unit

val site_name : t -> int -> string

(** Allocate a heap object; its reported type comes from the site's
    memento when one was observed. *)
val malloc : t -> site:int -> int -> Mobject.t

(** Record the scalar kind observed at the first typed access of [obj];
    later allocations from the same site start out typed. *)
val observe : t -> Mobject.t -> Irtype.scalar -> unit

(** Checked [free]: no-op on NULL; [Merror.Error] on invalid/double
    frees. *)
val free : t -> Mobject.ptr -> string -> unit

(** Heap objects never freed. *)
val leaked : t -> Mobject.t list

(** Forget all allocations and site mementos, restoring the heap to its
    freshly-[create]d behaviour (used by [Interp.reset]). *)
val clear : t -> unit
