(** The managed heap: checked [malloc]/[calloc]/[realloc]/[free] plus
    allocation mementos (paper §3.3): the element type observed at the
    first typed access of a heap object is propagated back to its
    allocation site, so subsequent allocations from the same site are
    typed immediately.  With the byte-backed representation the memento
    does not change checking behaviour — it determines the reported class
    name and is the subject of an ablation benchmark. *)

type t = {
  site_types : (int, Irtype.scalar) Hashtbl.t;
  site_names : (int, string) Hashtbl.t;  (** site id -> function name *)
  mutable live : Mobject.t list;
  mutable alloc_count : int;
  mutable alloc_bytes : int;
  mutable free_count : int;
  mutable live_bytes : int;
  mutable peak_bytes : int;  (** high-water mark of [live_bytes] *)
  mementos_enabled : bool;
}

let create ?(mementos = true) () =
  {
    site_types = Hashtbl.create 32;
    site_names = Hashtbl.create 32;
    live = [];
    alloc_count = 0;
    alloc_bytes = 0;
    free_count = 0;
    live_bytes = 0;
    peak_bytes = 0;
    mementos_enabled = mementos;
  }

let untyped_mty size = Irtype.MArray (Irtype.MScalar Irtype.I8, size)

let name_site heap ~site name = Hashtbl.replace heap.site_names site name

let site_name heap site =
  Option.value (Hashtbl.find_opt heap.site_names site) ~default:"?"

let malloc heap ~site size : Mobject.t =
  let mty =
    match
      if heap.mementos_enabled then Hashtbl.find_opt heap.site_types site
      else None
    with
    | Some scalar ->
      let esz = Irtype.scalar_size scalar in
      Irtype.MArray (Irtype.MScalar scalar, max 1 (size / max esz 1))
    | None -> untyped_mty size
  in
  let obj = Mobject.alloc ~site ~storage:Merror.Heap ~mty size in
  heap.alloc_count <- heap.alloc_count + 1;
  heap.alloc_bytes <- heap.alloc_bytes + size;
  heap.live_bytes <- heap.live_bytes + size;
  if heap.live_bytes > heap.peak_bytes then heap.peak_bytes <- heap.live_bytes;
  heap.live <- obj :: heap.live;
  obj

(** Record the scalar kind observed at the first access of [obj]; the
    next allocation from the same site starts out typed. *)
let observe heap (obj : Mobject.t) (scalar : Irtype.scalar) =
  if heap.mementos_enabled && obj.Mobject.site >= 0 then
    if not (Hashtbl.mem heap.site_types obj.Mobject.site) then
      Hashtbl.replace heap.site_types obj.Mobject.site scalar

let free heap (p : Mobject.ptr) context =
  match p with
  | Mobject.Pnull -> () (* free(NULL) is a no-op per the standard *)
  | Mobject.Pobj a ->
    Mobject.free_addr a context;
    heap.free_count <- heap.free_count + 1;
    heap.live_bytes <- heap.live_bytes - a.Mobject.obj.Mobject.byte_size
  | Mobject.Pfunc _ ->
    Merror.raise_error (Merror.Invalid_free "function pointer passed to free()")
      context
  | Mobject.Pinvalid _ ->
    Merror.raise_error (Merror.Invalid_free "unrecognized pointer passed to free()")
      context

(** Heap objects never freed (paper §6: memory-leak detection as an
    extension — here implemented eagerly at exit). *)
let leaked heap =
  List.filter (fun obj -> not (Mobject.is_freed obj)) heap.live

(** Forget everything from previous runs, including the allocation-site
    mementos: a [clear]ed heap behaves exactly like a fresh [create], so
    [Interp.reset] re-runs are bit-identical to first runs. *)
let clear heap =
  Hashtbl.reset heap.site_types;
  Hashtbl.reset heap.site_names;
  heap.live <- [];
  heap.alloc_count <- 0;
  heap.alloc_bytes <- 0;
  heap.free_count <- 0;
  heap.live_bytes <- 0;
  heap.peak_bytes <- 0
