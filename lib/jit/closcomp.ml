(** Tier-2 closure compiler (DESIGN.md §9).

    Translates a prepared function ([Interp.pfunc], the output of the
    prepare -> link pipeline) into nested OCaml closures: one closure
    per basic block held in a cell array (so branches are direct
    threaded — a cell dereference plus an OCaml tail call), one closure
    per instruction chained through its continuation, phi parallel
    copies compiled onto the edges, and every compile-time-known
    decision hoisted out of the run-time path: opcode dispatch, operand
    shapes (register vs pre-boxed immediate), scalar-width
    normalization, the memento-observation predicate, the function's
    error-context string, and resolved direct-call targets.

    On top of that, compiled code keeps provably-small integers
    *unboxed*: a register whose every writer is a <=32-bit integer
    producer (a narrow load, binop, compare, or int cast — and, through
    a fixpoint, phi/select moves of such registers) lives in a flat
    [int] side array ([frame.fr_iregs]) instead of [fr_regs].  Those
    registers never allocate a [Mval.Vint] box and never pay the OCaml
    write barrier, and narrow loads/stores hit an inlined fast path on
    the managed object's bytes (identical checks, in the identical
    order) instead of calling through [Mobject].  This is sound because
    a frame's register file is invisible outside the function's own
    code: calls receive re-boxed arguments, returns re-box the result,
    and after a managed error the provenance replay re-executes from
    scratch in the interpreter, never reading the dead frame.

    The contract is *observable bit-equivalence* with the interpreter:
    identical program output, identical managed errors at the same
    operation, and identical [steps] accounting — every operation still
    charges the step budget individually, so a step-limit timeout fires
    at exactly the same point in either tier.  What compiled code is
    allowed to drop is pure interpreter overhead: dispatch matches,
    per-op metrics branches when metrics are off, value boxing that no
    observer can distinguish, and dead compare registers (the
    icmp+condbr fusion below, applied only when the compare register
    has no other reader). *)

open Interp

type cont = state -> frame -> Mval.t option

(* Pre-boxed booleans: compare results are immutable, so sharing one box
   is indistinguishable from the interpreter's fresh [Vint]s. *)
let vtrue = Mval.Vint 1L
let vfalse = Mval.Vint 0L

(* ------------------------------------------------------------------ *)
(* Compile-time specialization helpers                                 *)
(* ------------------------------------------------------------------ *)

(** Width normalization with the identity widths resolved at compile
    time ([Irtype.normalize_int] is the identity on I64/Ptr). *)
let normalizer (s : Irtype.scalar) : int64 -> int64 =
  match s with
  | Irtype.I64 | Irtype.Ptr -> fun v -> v
  | s -> Irtype.normalize_int s

(** [Interp.deref] with the error-context string captured at compile
    time instead of recovered from the frame stack per access. *)
let deref_c (ctx : string) (pm : Mval.t) : Mobject.addr =
  match Mval.as_ptr ctx pm with
  | Mobject.Pobj a -> a
  | Mobject.Pnull -> Merror.raise_error Merror.Null_deref ctx
  | Mobject.Pfunc name ->
    Merror.raise_error
      (Merror.Type_violation ("dereference of function pointer &" ^ name))
      ctx
  | Mobject.Pinvalid c ->
    Merror.raise_error
      (Merror.Type_violation
         (Printf.sprintf "dereference of forged pointer 0x%Lx" c))
      ctx

(* ------------- boxed (int64) operator specialization ------------- *)

(** One fully resolved integer/float binop, dispatched once at compile
    time (the interpreter re-matches the opcode per execution).  The
    semantics — including the division-by-zero check, unsigned
    reinterpretation and result normalization — mirror
    [Interp.exec_binop] exactly. *)
let binop_fn (ctx : string) (op : Instr.binop) (s : Irtype.scalar) :
    Mval.t -> Mval.t -> Mval.t =
  let norm = normalizer s in
  match op with
  | Instr.FAdd when s = Irtype.F32 ->
    fun a b ->
      Mval.Vfloat (Irtype.round_to_f32 (Mval.as_float a +. Mval.as_float b))
  | Instr.FSub when s = Irtype.F32 ->
    fun a b ->
      Mval.Vfloat (Irtype.round_to_f32 (Mval.as_float a -. Mval.as_float b))
  | Instr.FMul when s = Irtype.F32 ->
    fun a b ->
      Mval.Vfloat (Irtype.round_to_f32 (Mval.as_float a *. Mval.as_float b))
  | Instr.FDiv when s = Irtype.F32 ->
    fun a b ->
      Mval.Vfloat (Irtype.round_to_f32 (Mval.as_float a /. Mval.as_float b))
  | Instr.FAdd -> fun a b -> Mval.Vfloat (Mval.as_float a +. Mval.as_float b)
  | Instr.FSub -> fun a b -> Mval.Vfloat (Mval.as_float a -. Mval.as_float b)
  | Instr.FMul -> fun a b -> Mval.Vfloat (Mval.as_float a *. Mval.as_float b)
  | Instr.FDiv -> fun a b -> Mval.Vfloat (Mval.as_float a /. Mval.as_float b)
  | Instr.Add ->
    fun a b -> Mval.Vint (norm (Int64.add (Mval.as_int a) (Mval.as_int b)))
  | Instr.Sub ->
    fun a b -> Mval.Vint (norm (Int64.sub (Mval.as_int a) (Mval.as_int b)))
  | Instr.Mul ->
    fun a b -> Mval.Vint (norm (Int64.mul (Mval.as_int a) (Mval.as_int b)))
  | Instr.Sdiv ->
    fun a b ->
      let x = Mval.as_int a and y = Mval.as_int b in
      if Int64.equal y 0L then Merror.raise_error Merror.Division_by_zero ctx;
      Mval.Vint (norm (Int64.div x y))
  | Instr.Udiv ->
    let u = Irtype.unsigned_of s in
    fun a b ->
      let x = Mval.as_int a and y = Mval.as_int b in
      if Int64.equal y 0L then Merror.raise_error Merror.Division_by_zero ctx;
      Mval.Vint (norm (Int64.unsigned_div (u x) (u y)))
  | Instr.Srem ->
    fun a b ->
      let x = Mval.as_int a and y = Mval.as_int b in
      if Int64.equal y 0L then Merror.raise_error Merror.Division_by_zero ctx;
      Mval.Vint (norm (Int64.rem x y))
  | Instr.Urem ->
    let u = Irtype.unsigned_of s in
    fun a b ->
      let x = Mval.as_int a and y = Mval.as_int b in
      if Int64.equal y 0L then Merror.raise_error Merror.Division_by_zero ctx;
      Mval.Vint (norm (Int64.unsigned_rem (u x) (u y)))
  | Instr.Shl ->
    fun a b ->
      Mval.Vint
        (norm
           (Int64.shift_left (Mval.as_int a)
              (Int64.to_int (Mval.as_int b) land 63)))
  | Instr.Lshr ->
    let u = Irtype.unsigned_of s in
    fun a b ->
      Mval.Vint
        (norm
           (Int64.shift_right_logical
              (u (Mval.as_int a))
              (Int64.to_int (Mval.as_int b) land 63)))
  | Instr.Ashr ->
    fun a b ->
      Mval.Vint
        (norm
           (Int64.shift_right (Mval.as_int a)
              (Int64.to_int (Mval.as_int b) land 63)))
  | Instr.And ->
    fun a b -> Mval.Vint (norm (Int64.logand (Mval.as_int a) (Mval.as_int b)))
  | Instr.Or ->
    fun a b -> Mval.Vint (norm (Int64.logor (Mval.as_int a) (Mval.as_int b)))
  | Instr.Xor ->
    fun a b -> Mval.Vint (norm (Int64.logxor (Mval.as_int a) (Mval.as_int b)))

(** Integer comparison as a raw [bool], opcode resolved at compile time.
    [Int64.equal]/[Int64.compare] agree with the interpreter's
    polymorphic comparisons on int64 but skip the generic entry. *)
let icmp_fn (op : Instr.icmp) (s : Irtype.scalar) : int64 -> int64 -> bool =
  match op with
  | Instr.Ieq -> fun x y -> Int64.equal x y
  | Instr.Ine -> fun x y -> not (Int64.equal x y)
  | Instr.Islt -> fun x y -> Int64.compare x y < 0
  | Instr.Isle -> fun x y -> Int64.compare x y <= 0
  | Instr.Isgt -> fun x y -> Int64.compare x y > 0
  | Instr.Isge -> fun x y -> Int64.compare x y >= 0
  | Instr.Iult ->
    let u = Irtype.unsigned_of s in
    fun x y -> Int64.unsigned_compare (u x) (u y) < 0
  | Instr.Iule ->
    let u = Irtype.unsigned_of s in
    fun x y -> Int64.unsigned_compare (u x) (u y) <= 0
  | Instr.Iugt ->
    let u = Irtype.unsigned_of s in
    fun x y -> Int64.unsigned_compare (u x) (u y) > 0
  | Instr.Iuge ->
    let u = Irtype.unsigned_of s in
    fun x y -> Int64.unsigned_compare (u x) (u y) >= 0

(* ------------- unboxed (native int) operator specialization ------- *)

(** Scalars whose normalized values always fit an OCaml native [int]
    (63 bits) with room to spare: the unboxed register file holds
    exactly the int64 the interpreter's [Vint] would hold. *)
let small = function
  | Irtype.I1 | Irtype.I8 | Irtype.I16 | Irtype.I32 -> true
  | Irtype.I64 | Irtype.Ptr | Irtype.F32 | Irtype.F64 -> false

let ibits = function
  | Irtype.I1 -> 1
  | Irtype.I8 -> 8
  | Irtype.I16 -> 16
  | Irtype.I32 -> 32
  | _ -> invalid_arg "Closcomp.ibits: not a small scalar"

let imask s = (1 lsl ibits s) - 1

(** [Irtype.normalize_int] on native ints: sign-extend from the low
    [ibits s] bits (I1 normalizes to 0/1, not a sign bit). *)
let inorm (s : Irtype.scalar) : int -> int =
  if s = Irtype.I1 then fun v -> v land 1
  else
    let sh = 63 - ibits s in
    fun v -> (v lsl sh) asr sh

(** [Interp.exec_binop] on native ints, valid for small scalars: on
    normalized <=32-bit inputs every intermediate fits 63 bits (a
    product only needs its low 32 bits, which wrap identically mod 2^63
    and mod 2^64), so the normalized result is bit-identical to the
    interpreter's int64 computation. *)
let ibinop_fn (ctx : string) (op : Instr.binop) (s : Irtype.scalar) :
    int -> int -> int =
  let norm = inorm s in
  let mask = imask s in
  match op with
  | Instr.Add -> fun x y -> norm (x + y)
  | Instr.Sub -> fun x y -> norm (x - y)
  | Instr.Mul -> fun x y -> norm (x * y)
  | Instr.Sdiv ->
    fun x y ->
      if y = 0 then Merror.raise_error Merror.Division_by_zero ctx;
      norm (x / y)
  | Instr.Udiv ->
    fun x y ->
      if y = 0 then Merror.raise_error Merror.Division_by_zero ctx;
      norm ((x land mask) / (y land mask))
  | Instr.Srem ->
    fun x y ->
      if y = 0 then Merror.raise_error Merror.Division_by_zero ctx;
      norm (x mod y)
  | Instr.Urem ->
    fun x y ->
      if y = 0 then Merror.raise_error Merror.Division_by_zero ctx;
      norm ((x land mask) mod (y land mask))
  | Instr.Shl -> fun x y -> norm (x lsl (y land 63))
  | Instr.Lshr -> fun x y -> norm ((x land mask) lsr (y land 63))
  | Instr.Ashr -> fun x y -> norm (x asr (y land 63))
  | Instr.And -> fun x y -> norm (x land y)
  | Instr.Or -> fun x y -> norm (x lor y)
  | Instr.Xor -> fun x y -> norm (x lxor y)
  | Instr.FAdd | Instr.FSub | Instr.FMul | Instr.FDiv ->
    invalid_arg "Closcomp.ibinop_fn: float op"

(** [Interp.exec_icmp] on native ints, valid for small scalars. *)
let iicmp_fn (op : Instr.icmp) (s : Irtype.scalar) : int -> int -> bool =
  let mask = imask s in
  match op with
  | Instr.Ieq -> fun x y -> x = y
  | Instr.Ine -> fun x y -> x <> y
  | Instr.Islt -> fun x y -> x < y
  | Instr.Isle -> fun x y -> x <= y
  | Instr.Isgt -> fun x y -> x > y
  | Instr.Isge -> fun x y -> x >= y
  | Instr.Iult -> fun x y -> x land mask < y land mask
  | Instr.Iule -> fun x y -> x land mask <= y land mask
  | Instr.Iugt -> fun x y -> x land mask > y land mask
  | Instr.Iuge -> fun x y -> x land mask >= y land mask

(* ------------------------------------------------------------------ *)
(* Register classification                                             *)
(* ------------------------------------------------------------------ *)

(** How many prepared operands read register [r] anywhere in the
    function (instruction operands, terminators, phi-copy sources,
    dynamic GEP indices).  Used to prove a compare register dead for the
    icmp+condbr fusion. *)
let reg_use_counts (pf : pfunc) : int array =
  let uses = Array.make pf.pf_nregs 0 in
  let pv = function
    | Preg r -> uses.(r) <- uses.(r) + 1
    | Pimm _ | Pfail _ -> ()
  in
  let copies = function
    | Pc_copy (_, srcs) -> Array.iter pv srcs
    | Pc_none | Pc_missing -> ()
  in
  let edge = function Edge (_, c) -> copies c | Edge_unknown _ -> () in
  let term = function
    | Pret (Some v) -> pv v
    | Pret None | Punreachable -> ()
    | Pbr e -> edge e
    | Pcondbr (c, a, b) ->
      pv c;
      edge a;
      edge b
    | Pswitch (v, impl, d) ->
      pv v;
      edge d;
      (match impl with
      | Sw_linear (_, es) -> Array.iter edge es
      | Sw_table tbl -> Hashtbl.iter (fun _ e -> edge e) tbl)
  in
  let instr = function
    | Palloca _ | Psancheck | Ploc _ -> ()
    | Pload (_, _, p) -> pv p
    | Pstore (_, v, p) ->
      pv v;
      pv p
    | Pgep (_, b, g) ->
      pv b;
      Array.iter (fun (v, _) -> pv v) g.pg_dyn
    | Pbinop (_, _, _, a, b, _) ->
      pv a;
      pv b
    | Picmp (_, _, _, a, b) ->
      pv a;
      pv b
    | Pfcmp (_, _, a, b) ->
      pv a;
      pv b
    | Pcast (_, _, _, _, v) -> pv v
    | Pselect (_, c, a, b) ->
      pv c;
      pv a;
      pv b
    | Pcall (_, callee, args, _) ->
      (match callee with Pindirect (v, _) -> pv v | Pdirect _ -> ());
      Array.iter pv args
  in
  Array.iter
    (fun blk ->
      Array.iter instr blk.pb_instrs;
      term blk.pb_term)
    pf.pf_blocks;
  copies pf.pf_entry_copies;
  uses

(* A register's writer, for the unboxed-int classification. *)
type writer =
  | Wyes  (** produces a normalized <=32-bit integer *)
  | Wno  (** produces anything else (pointer, float, wide int, call) *)
  | Wdep of int  (** moves another register's value (phi copy, select) *)

(** Which registers can live in the unboxed int file: every writer —
    instruction results, phi-edge copies, the implicit parameter setup —
    must produce a normalized <=32-bit integer, transitively through
    register moves (fixpoint: a move of a demoted register demotes). *)
let small_int_regs (pf : pfunc) : bool array =
  let n = pf.pf_nregs in
  let writers : writer list array = Array.make n [] in
  let add r w = if r >= 0 && r < n then writers.(r) <- w :: writers.(r) in
  let fits_imm = function
    (* the value survives an int round trip, so re-boxing is exact *)
    | Mval.Vint v -> Int64.equal (Int64.of_int (Int64.to_int v)) v
    | Mval.Vfloat _ | Mval.Vptr _ -> false
  in
  let src_kind = function
    | Preg r -> Wdep r
    | Pimm v -> if fits_imm v then Wyes else Wno
    | Pfail _ -> Wno
  in
  (* parameters arrive pre-boxed from the caller *)
  Array.iter (fun r -> add r Wno) pf.pf_param_regs;
  let copies = function
    | Pc_copy (dests, srcs) ->
      Array.iteri (fun i d -> add d (src_kind srcs.(i))) dests
    | Pc_none | Pc_missing -> ()
  in
  let edge = function Edge (_, c) -> copies c | Edge_unknown _ -> () in
  let term = function
    | Pret _ | Punreachable -> ()
    | Pbr e -> edge e
    | Pcondbr (_, a, b) ->
      edge a;
      edge b
    | Pswitch (_, impl, d) ->
      edge d;
      (match impl with
      | Sw_linear (_, es) -> Array.iter edge es
      | Sw_table tbl -> Hashtbl.iter (fun _ e -> edge e) tbl)
  in
  let instr = function
    | Palloca (r, _, _) -> add r Wno
    | Pload (r, s, _) -> add r (if small s then Wyes else Wno)
    | Pstore _ | Psancheck | Ploc _ -> ()
    | Pgep (r, _, _) -> add r Wno
    | Pbinop (r, _, s, _, _, cls) ->
      add r (if cls <> Cfp && small s then Wyes else Wno)
    | Picmp (r, _, _, _, _) -> add r Wyes
    | Pfcmp (r, _, _, _) -> add r Wno
    | Pcast (r, (Instr.Trunc | Instr.Sext | Instr.Zext), _, into, _) ->
      add r (if small into then Wyes else Wno)
    | Pcast (r, _, _, _, _) -> add r Wno
    | Pselect (r, _, a, b) ->
      add r (src_kind a);
      add r (src_kind b)
    | Pcall (r, _, _, _) -> add r Wno
  in
  Array.iter
    (fun blk ->
      Array.iter instr blk.pb_instrs;
      term blk.pb_term)
    pf.pf_blocks;
  copies pf.pf_entry_copies;
  let unboxed =
    Array.map
      (fun ws -> ws <> [] && not (List.exists (fun w -> w = Wno) ws))
      writers
  in
  let changed = ref true in
  while !changed do
    changed := false;
    for r = 0 to n - 1 do
      if
        unboxed.(r)
        && List.exists
             (function Wdep d -> not unboxed.(d) | Wyes | Wno -> false)
             writers.(r)
      then begin
        unboxed.(r) <- false;
        changed := true
      end
    done
  done;
  unboxed

(* ------------------------------------------------------------------ *)
(* The compiler                                                        *)
(* ------------------------------------------------------------------ *)

let compile (st0 : state) (pf : pfunc) : compiled_body =
  let obs = st0.obs in
  let os = st0.opstats in
  let ctrs = pf.pf_counters in
  let limit = st0.step_limit in
  let heap = st0.heap in
  let ctx = pf.pf_context in
  (* Per-class step charges: same writes, same raise point as
     [Interp.charge], with the profile/counter records captured at
     compile time (a compiled body only ever runs in the state that
     compiled it). *)
  let charge_op (st : state) =
    st.steps <- st.steps + 1;
    ctrs.c_ops <- ctrs.c_ops + 1;
    if st.steps > limit then raise Step_limit_exceeded
  in
  let charge_fp (st : state) =
    st.steps <- st.steps + 1;
    ctrs.c_fp <- ctrs.c_fp + 1;
    if st.steps > limit then raise Step_limit_exceeded
  in
  let charge_mem (st : state) =
    st.steps <- st.steps + 1;
    ctrs.c_mem <- ctrs.c_mem + 1;
    if st.steps > limit then raise Step_limit_exceeded
  in
  (* Opstat bumps ride on the charge only when metrics were on at create
     time, so the metrics-off hot path carries no per-op branch at all. *)
  let stat bump ch = if obs then fun st -> ch st; bump () else ch in
  let ch_alloca = stat (fun () -> os.os_alloca <- os.os_alloca + 1) charge_op in
  let ch_load = stat (fun () -> os.os_load <- os.os_load + 1) charge_mem in
  let ch_store = stat (fun () -> os.os_store <- os.os_store + 1) charge_mem in
  let ch_gep = stat (fun () -> os.os_gep <- os.os_gep + 1) charge_op in
  let ch_binop cls =
    let ch = match cls with Cfp -> charge_fp | Cop | Cmem -> charge_op in
    stat (fun () -> os.os_binop <- os.os_binop + 1) ch
  in
  let ch_icmp = stat (fun () -> os.os_icmp <- os.os_icmp + 1) charge_op in
  let ch_fcmp = stat (fun () -> os.os_fcmp <- os.os_fcmp + 1) charge_fp in
  let ch_cast = stat (fun () -> os.os_cast <- os.os_cast + 1) charge_op in
  let ch_select = stat (fun () -> os.os_select <- os.os_select + 1) charge_op in
  let ch_sancheck =
    stat (fun () -> os.os_sancheck <- os.os_sancheck + 1) charge_op
  in
  let ch_call = stat (fun () -> os.os_call <- os.os_call + 1) charge_op in
  let ch_term = stat (fun () -> os.os_term <- os.os_term + 1) charge_op in
  let ch_phi = stat (fun () -> os.os_phi_copy <- os.os_phi_copy + 1) charge_op in

  let nblocks = Array.length pf.pf_blocks in
  let unset : cont = fun _ _ -> failwith "closcomp: block not compiled" in
  let cells = Array.init nblocks (fun _ -> ref unset) in
  let uses = reg_use_counts pf in
  let unboxed = small_int_regs pf in

  (* --- class-aware operand access --- *)

  (* Boxed view of any operand; unboxed registers re-box on read (their
     int holds exactly the int64 the interpreter's [Vint] would). *)
  let getter (v : pval) : frame -> Mval.t =
    match v with
    | Preg r when unboxed.(r) ->
      fun fr -> Mval.Vint (Int64.of_int (Array.unsafe_get fr.fr_iregs r))
    | Preg r -> fun fr -> Array.unsafe_get fr.fr_regs r
    | Pimm v -> fun _ -> v
    | Pfail msg -> fun _ -> failwith msg
  in
  (* Native-int view, for operands of small-scalar operations.  The
     [Int64.to_int] truncation of a boxed operand is exact for every
     well-typed small operand (normalized <=32-bit values), and for any
     other int64 every consumer below re-masks/re-normalizes to <=32
     bits, which only depends on the low bits [to_int] preserves. *)
  let iget (v : pval) : frame -> int =
    match v with
    | Preg r when unboxed.(r) -> fun fr -> Array.unsafe_get fr.fr_iregs r
    | Preg r ->
      fun fr -> Int64.to_int (Mval.as_int (Array.unsafe_get fr.fr_regs r))
    | Pimm (Mval.Vint v) ->
      let c = Int64.to_int v in
      fun _ -> c
    | Pimm v -> fun _ -> Int64.to_int (Mval.as_int v)
    | Pfail msg -> fun _ -> failwith msg
  in
  (* Result writers for int-producing operations. *)
  let iset (r : int) : frame -> int -> unit =
    if unboxed.(r) then fun fr v -> Array.unsafe_set fr.fr_iregs r v
    else fun fr v -> Array.unsafe_set fr.fr_regs r (Mval.Vint (Int64.of_int v))
  in

  (* --- edges: phi parallel copy, then a direct-threaded jump --- *)
  let compile_jump (copies : phicopy) (jump : cont ref) : cont =
    match copies with
    | Pc_none -> fun st fr -> !jump st fr
    | Pc_missing ->
      fun _ _ -> failwith "interp: phi has no incoming edge for predecessor"
    | Pc_copy (dests, srcs) ->
      let n = Array.length dests in
      if n = 1 then begin
        let d = dests.(0) in
        if unboxed.(d) then begin
          let ig = iget srcs.(0) in
          fun st fr ->
            ch_phi st;
            Array.unsafe_set fr.fr_iregs d (ig fr);
            !jump st fr
        end
        else
          match srcs.(0) with
          | Preg rs when not unboxed.(rs) ->
            fun st fr ->
              ch_phi st;
              fr.fr_regs.(d) <- fr.fr_regs.(rs);
              !jump st fr
          | src ->
            let g = getter src in
            fun st fr ->
              ch_phi st;
              fr.fr_regs.(d) <- g fr;
              !jump st fr
      end
      else begin
        (* parallel copy with a mixed register file: unboxed slots move
           through an int scratch array, boxed slots through an Mval
           one; all sources are read before any write, as in the
           interpreter *)
        let kinds = Array.map (fun d -> unboxed.(d)) dests in
        let igs =
          Array.mapi (fun i s -> if kinds.(i) then iget s else fun _ -> 0) srcs
        in
        let gs =
          Array.mapi
            (fun i s -> if kinds.(i) then (fun _ -> Mval.zero) else getter s)
            srcs
        in
        fun st fr ->
          let tmpi = Array.make n 0 in
          let tmpv = Array.make n Mval.zero in
          for i = 0 to n - 1 do
            charge_op st;
            if kinds.(i) then tmpi.(i) <- igs.(i) fr
            else tmpv.(i) <- gs.(i) fr
          done;
          for i = 0 to n - 1 do
            if kinds.(i) then Array.unsafe_set fr.fr_iregs dests.(i) tmpi.(i)
            else fr.fr_regs.(dests.(i)) <- tmpv.(i)
          done;
          if obs then os.os_phi_copy <- os.os_phi_copy + n;
          !jump st fr
      end
  in
  let compile_edge (e : pedge) : cont =
    match e with
    | Edge (idx, copies) -> compile_jump copies cells.(idx)
    | Edge_unknown l -> fun _ _ -> failwith ("interp: jump to unknown block " ^ l)
  in
  (* A copy-free edge is just its target cell: branch closures inline the
     [!cell] dereference instead of hopping through a wrapper closure. *)
  let edge_plain (e : pedge) : cont ref option =
    match e with Edge (idx, Pc_none) -> Some cells.(idx) | _ -> None
  in

  (* --- terminators --- *)
  let compile_term (t : pterm) : cont =
    match t with
    | Pret (Some (Preg r)) when unboxed.(r) ->
      fun st fr ->
        ch_term st;
        Some (Mval.Vint (Int64.of_int (Array.unsafe_get fr.fr_iregs r)))
    | Pret (Some (Preg r)) ->
      fun st fr ->
        ch_term st;
        Some fr.fr_regs.(r)
    | Pret (Some v) ->
      let g = getter v in
      fun st fr ->
        ch_term st;
        Some (g fr)
    | Pret None ->
      fun st _fr ->
        ch_term st;
        None
    | Pbr e -> begin
      match edge_plain e with
      | Some cell ->
        fun st fr ->
          ch_term st;
          !cell st fr
      | None ->
        let k = compile_edge e in
        fun st fr ->
          ch_term st;
          k st fr
    end
    | Pcondbr (c, a, b) -> begin
      match (c, edge_plain a, edge_plain b) with
      | Preg rc, Some ca, Some cb when unboxed.(rc) ->
        fun st fr ->
          ch_term st;
          if Array.unsafe_get fr.fr_iregs rc = 0 then !cb st fr else !ca st fr
      | Preg rc, Some ca, Some cb ->
        fun st fr ->
          ch_term st;
          if Int64.equal (Mval.as_int fr.fr_regs.(rc)) 0L then !cb st fr
          else !ca st fr
      | c, _, _ ->
        let ka = compile_edge a and kb = compile_edge b in
        (match c with
        | Preg rc when unboxed.(rc) ->
          fun st fr ->
            ch_term st;
            if Array.unsafe_get fr.fr_iregs rc = 0 then kb st fr else ka st fr
        | Preg rc ->
          fun st fr ->
            ch_term st;
            if Int64.equal (Mval.as_int fr.fr_regs.(rc)) 0L then kb st fr
            else ka st fr
        | c ->
          let g = getter c in
          fun st fr ->
            ch_term st;
            if Int64.equal (Mval.as_int (g fr)) 0L then kb st fr else ka st fr)
    end
    | Pswitch (v, impl, default) ->
      let gv = getter v in
      let kd = compile_edge default in
      (match impl with
      | Sw_linear (keys, edges) ->
        let ks = Array.map compile_edge edges in
        let nk = Array.length keys in
        fun st fr ->
          ch_term st;
          let x = Mval.as_int (gv fr) in
          let rec find i =
            if i >= nk then kd
            else if Int64.equal keys.(i) x then ks.(i)
            else find (i + 1)
          in
          (find 0) st fr
      | Sw_table tbl ->
        let ctbl = Hashtbl.create (2 * Hashtbl.length tbl) in
        Hashtbl.iter (fun k e -> Hashtbl.replace ctbl k (compile_edge e)) tbl;
        fun st fr ->
          ch_term st;
          let x = Mval.as_int (gv fr) in
          (match Hashtbl.find_opt ctbl x with Some k -> k | None -> kd) st fr)
    | Punreachable ->
      fun st _fr ->
        ch_term st;
        Merror.raise_error
          (Merror.Type_violation "reached an unreachable instruction")
          ctx
  in

  (* --- narrow memory access fast paths ---

     The inlined path performs the interpreter's checks on the managed
     object in the interpreter's order — dereference, memento
     observation, liveness, bounds, the uninitialized-read map — and
     bails to the real [Mobject] accessors the moment any of them would
     take an interesting branch, so every error is raised by the exact
     same code with the exact same message. *)
  let iload_fast (s : Irtype.scalar) : Bytes.t -> int -> int =
    match s with
    | Irtype.I1 -> fun b off -> Char.code (Bytes.get b off) land 1
    | Irtype.I8 -> fun b off -> (Char.code (Bytes.get b off) lsl 55) asr 55
    | Irtype.I16 -> fun b off -> (Bytes.get_uint16_le b off lsl 47) asr 47
    | Irtype.I32 -> fun b off -> Int32.to_int (Bytes.get_int32_le b off)
    | _ -> invalid_arg "Closcomp.iload_fast: not a small scalar"
  in
  let istore_fast (s : Irtype.scalar) : Bytes.t -> int -> int -> unit =
    match s with
    | Irtype.I1 | Irtype.I8 ->
      fun b off v -> Bytes.set b off (Char.chr (v land 0xFF))
    | Irtype.I16 -> fun b off v -> Bytes.set_uint16_le b off (v land 0xFFFF)
    | Irtype.I32 -> fun b off v -> Bytes.set_int32_le b off (Int32.of_int v)
    | _ -> invalid_arg "Closcomp.istore_fast: not a small scalar"
  in

  (* --- instructions, chained through their continuation --- *)
  let compile_instr (i : pinstr) (next : cont) : cont =
    match i with
    | Palloca (r, mty, size) ->
      fun st fr ->
        ch_alloca st;
        let obj = Mobject.alloc ~storage:Merror.Stack ~mty size in
        fr.fr_regs.(r) <- Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 });
        next st fr
    | Pload (r, s, p) when small s ->
      let size = Irtype.scalar_size s in
      let fast = iload_fast s in
      let norm = inorm s in
      let observe = s <> Irtype.I8 in
      (* the hottest operation in alloca-based code (every read of a
         local): for the dominant register-pointer/unboxed-result shape
         everything is inlined — the register reads, the object-pointer
         match, the byte access and the result write *)
      (match p with
      | Preg rp when (not unboxed.(rp)) && unboxed.(r) ->
        fun st fr ->
          ch_load st;
          let a =
            match Array.unsafe_get fr.fr_regs rp with
            | Mval.Vptr (Mobject.Pobj a) -> a
            | pm -> deref_c ctx pm
          in
          let obj = a.Mobject.obj in
          if observe then (
            match obj.Mobject.storage with
            | Merror.Heap -> Mheap.observe heap obj s
            | _ -> ());
          let off = a.Mobject.moff in
          let v =
            match (obj.Mobject.data, obj.Mobject.init_map) with
            | Some b, None when off >= 0 && off + size <= obj.Mobject.byte_size
              ->
              fast b off
            | _ -> norm (Int64.to_int (Mobject.load_int a ~size ctx))
          in
          Array.unsafe_set fr.fr_iregs r v;
          next st fr
      | p ->
        let g = getter p in
        let set = iset r in
        fun st fr ->
          ch_load st;
          let a =
            match g fr with
            | Mval.Vptr (Mobject.Pobj a) -> a
            | pm -> deref_c ctx pm
          in
          let obj = a.Mobject.obj in
          if observe then (
            match obj.Mobject.storage with
            | Merror.Heap -> Mheap.observe heap obj s
            | _ -> ());
          let off = a.Mobject.moff in
          let v =
            match (obj.Mobject.data, obj.Mobject.init_map) with
            | Some b, None when off >= 0 && off + size <= obj.Mobject.byte_size
              ->
              fast b off
            | _ -> norm (Int64.to_int (Mobject.load_int a ~size ctx))
          in
          set fr v;
          next st fr)
    | Pload (r, s, p) ->
      let size = Irtype.scalar_size s in
      let load : Mobject.addr -> Mval.t =
        match s with
        | Irtype.Ptr -> fun a -> Mval.Vptr (Mobject.load_ptr a ctx)
        | Irtype.F32 | Irtype.F64 ->
          fun a -> Mval.Vfloat (Mobject.load_float a ~size ctx)
        | _ ->
          (* I64: bounds+liveness inline, [Mobject] on any slow branch *)
          fun a ->
            let obj = a.Mobject.obj in
            let off = a.Mobject.moff in
            (match (obj.Mobject.data, obj.Mobject.init_map) with
            | Some b, None when off >= 0 && off + 8 <= obj.Mobject.byte_size
              ->
              Mval.Vint (Bytes.get_int64_le b off)
            | _ -> Mval.Vint (Mobject.load_int a ~size:8 ctx))
      in
      (* allocation-memento observation applies to non-i8 heap accesses
         only; the predicate on the scalar is compile-time *)
      (match p with
      | Preg rp when not unboxed.(rp) ->
        fun st fr ->
          ch_load st;
          let a =
            match Array.unsafe_get fr.fr_regs rp with
            | Mval.Vptr (Mobject.Pobj a) -> a
            | pm -> deref_c ctx pm
          in
          (match a.Mobject.obj.Mobject.storage with
          | Merror.Heap -> Mheap.observe heap a.Mobject.obj s
          | _ -> ());
          fr.fr_regs.(r) <- load a;
          next st fr
      | p ->
        let g = getter p in
        fun st fr ->
          ch_load st;
          let a =
            match g fr with
            | Mval.Vptr (Mobject.Pobj a) -> a
            | pm -> deref_c ctx pm
          in
          (match a.Mobject.obj.Mobject.storage with
          | Merror.Heap -> Mheap.observe heap a.Mobject.obj s
          | _ -> ());
          fr.fr_regs.(r) <- load a;
          next st fr)
    | Pstore (s, v, p) when small s ->
      let gv = iget v in
      let size = Irtype.scalar_size s in
      let fast = istore_fast s in
      let observe = s <> Irtype.I8 in
      (* operand order matches the interpreter — pointer, then value —
         and a plain register read cannot raise, so inlining the pointer
         read keeps every raise point in place *)
      (match p with
      | Preg rp when not unboxed.(rp) ->
        fun st fr ->
          ch_store st;
          let pm = Array.unsafe_get fr.fr_regs rp in
          let vv = gv fr in
          let a =
            match pm with
            | Mval.Vptr (Mobject.Pobj a) -> a
            | pm -> deref_c ctx pm
          in
          let obj = a.Mobject.obj in
          if observe then (
            match obj.Mobject.storage with
            | Merror.Heap -> Mheap.observe heap obj s
            | _ -> ());
          let off = a.Mobject.moff in
          (match (obj.Mobject.data, obj.Mobject.init_map) with
          | Some b, None
            when off >= 0
                 && off + size <= obj.Mobject.byte_size
                 && obj.Mobject.ptr_slots = None ->
            fast b off vv
          | _ -> Mobject.store_int a ~size (Int64.of_int vv) ctx);
          next st fr
      | p ->
        let gp = getter p in
        fun st fr ->
          ch_store st;
          let pp = gp fr in
          let vv = gv fr in
          let a =
            match pp with
            | Mval.Vptr (Mobject.Pobj a) -> a
            | pm -> deref_c ctx pm
          in
          let obj = a.Mobject.obj in
          if observe then (
            match obj.Mobject.storage with
            | Merror.Heap -> Mheap.observe heap obj s
            | _ -> ());
          let off = a.Mobject.moff in
          (match (obj.Mobject.data, obj.Mobject.init_map) with
          | Some b, None
            when off >= 0
                 && off + size <= obj.Mobject.byte_size
                 && obj.Mobject.ptr_slots = None ->
            fast b off vv
          | _ -> Mobject.store_int a ~size (Int64.of_int vv) ctx);
          next st fr)
    | Pstore (s, v, p) ->
      let gv = getter v and gp = getter p in
      let size = Irtype.scalar_size s in
      let store : Mobject.addr -> Mval.t -> unit =
        match s with
        | Irtype.Ptr -> fun a x -> Mobject.store_ptr a (Mval.as_ptr ctx x) ctx
        | Irtype.F32 | Irtype.F64 ->
          fun a x -> Mobject.store_float a ~size (Mval.as_float x) ctx
        | _ -> fun a x -> Mobject.store_int a ~size (Mval.as_int x) ctx
      in
      fun st fr ->
        ch_store st;
        let pp = gp fr in
        let vv = gv fr in
        let a =
          match pp with
          | Mval.Vptr (Mobject.Pobj a) -> a
          | pm -> deref_c ctx pm
        in
        (match a.Mobject.obj.Mobject.storage with
        | Merror.Heap -> Mheap.observe heap a.Mobject.obj s
        | _ -> ());
        store a vv;
        next st fr
    | Pgep (r, base, g) ->
      let gb = getter base in
      let apply delta (pm : Mval.t) : Mval.t =
        match Mval.as_ptr ctx pm with
        | Mobject.Pnull -> Mval.Vptr Mobject.Pnull
        | Mobject.Pobj a ->
          Mval.Vptr
            (Mobject.Pobj { a with Mobject.moff = a.Mobject.moff + delta })
        | Mobject.Pfunc _ as p ->
          Mval.Vptr
            (Mobject.Pinvalid
               (Int64.add (Mobject.ptr_to_int p) (Int64.of_int delta)))
        | Mobject.Pinvalid c ->
          Mval.Vptr (Mobject.Pinvalid (Int64.add c (Int64.of_int delta)))
      in
      let static = g.pg_static in
      (match g.pg_dyn with
      | [||] ->
        fun st fr ->
          ch_gep st;
          fr.fr_regs.(r) <- apply static (gb fr);
          next st fr
      | [| (iv, stride) |] ->
        let gi = iget iv in
        fun st fr ->
          ch_gep st;
          let b = gb fr in
          let d = static + (gi fr * stride) in
          fr.fr_regs.(r) <- apply d b;
          next st fr
      | dyn ->
        let gis = Array.map (fun (v, stride) -> (iget v, stride)) dyn in
        fun st fr ->
          ch_gep st;
          let b = gb fr in
          let d = ref static in
          for i = 0 to Array.length gis - 1 do
            let gi, stride = gis.(i) in
            d := !d + (gi fr * stride)
          done;
          fr.fr_regs.(r) <- apply !d b;
          next st fr)
    | Pbinop (r, op, s, a, b, cls) when cls <> Cfp && small s ->
      let f = ibinop_fn ctx op s in
      let ch = ch_binop cls in
      (match (a, b) with
      | Preg ra, Preg rb when unboxed.(ra) && unboxed.(rb) && unboxed.(r) ->
        fun st fr ->
          ch st;
          let ir = fr.fr_iregs in
          Array.unsafe_set ir r
            (f (Array.unsafe_get ir ra) (Array.unsafe_get ir rb));
          next st fr
      | a, b ->
        let ga = iget a and gb = iget b in
        let set = iset r in
        fun st fr ->
          ch st;
          (* right-to-left like the interpreter's application order *)
          let y = gb fr in
          set fr (f (ga fr) y);
          next st fr)
    | Pbinop (r, op, s, a, b, cls) ->
      let f = binop_fn ctx op s in
      let ch = ch_binop cls in
      let ga = getter a and gb = getter b in
      fun st fr ->
        ch st;
        let y = gb fr in
        fr.fr_regs.(r) <- f (ga fr) y;
        next st fr
    | Picmp (r, op, s, a, b) when small s ->
      let cmp = iicmp_fn op s in
      (match (a, b) with
      | Preg ra, Preg rb when unboxed.(ra) && unboxed.(rb) && unboxed.(r) ->
        fun st fr ->
          ch_icmp st;
          let ir = fr.fr_iregs in
          Array.unsafe_set ir r
            (if cmp (Array.unsafe_get ir ra) (Array.unsafe_get ir rb) then 1
             else 0);
          next st fr
      | a, b ->
        let ga = iget a and gb = iget b in
        if unboxed.(r) then
          fun st fr ->
            ch_icmp st;
            let y = gb fr in
            Array.unsafe_set fr.fr_iregs r (if cmp (ga fr) y then 1 else 0);
            next st fr
        else
          fun st fr ->
            ch_icmp st;
            let y = gb fr in
            fr.fr_regs.(r) <- (if cmp (ga fr) y then vtrue else vfalse);
            next st fr)
    | Picmp (r, op, s, a, b) ->
      let cmp = icmp_fn op s in
      let ga = getter a and gb = getter b in
      let set = iset r in
      fun st fr ->
        ch_icmp st;
        let y = Mval.as_int (gb fr) in
        set fr (if cmp (Mval.as_int (ga fr)) y then 1 else 0)
        |> fun () -> next st fr
    | Pfcmp (r, op, a, b) ->
      let ga = getter a and gb = getter b in
      fun st fr ->
        ch_fcmp st;
        let y = gb fr in
        fr.fr_regs.(r) <- exec_fcmp op (ga fr) y;
        next st fr
    | Pcast (r, op, from, into, v) ->
      (match op with
      | (Instr.Trunc | Instr.Sext | Instr.Zext) when small into ->
        let ig = iget v in
        let set = iset r in
        let n = inorm into in
        let conv =
          match op with
          | Instr.Zext when small from ->
            let mf = imask from in
            fun x -> n (x land mf)
          | _ -> n
        in
        fun st fr ->
          ch_cast st;
          set fr (conv (ig fr));
          next st fr
      | Instr.Sext ->
        (* into I64/Ptr: the operand's normalized value IS the result *)
        let g = getter v in
        fun st fr ->
          ch_cast st;
          fr.fr_regs.(r) <- Mval.Vint (Mval.as_int (g fr));
          next st fr
      | Instr.Trunc ->
        let n = normalizer into in
        let g = getter v in
        fun st fr ->
          ch_cast st;
          fr.fr_regs.(r) <- Mval.Vint (n (Mval.as_int (g fr)));
          next st fr
      | Instr.Zext ->
        let u = Irtype.unsigned_of from in
        let n = normalizer into in
        let g = getter v in
        fun st fr ->
          ch_cast st;
          fr.fr_regs.(r) <- Mval.Vint (n (u (Mval.as_int (g fr))));
          next st fr
      | op ->
        let g = getter v in
        fun st fr ->
          ch_cast st;
          fr.fr_regs.(r) <- exec_cast op from into (g fr);
          next st fr)
    | Pselect (r, c, a, b) when unboxed.(r) ->
      let gc = iget c and ga = iget a and gb = iget b in
      fun st fr ->
        ch_select st;
        Array.unsafe_set fr.fr_iregs r (if gc fr = 0 then gb fr else ga fr);
        next st fr
    | Pselect (r, c, a, b) ->
      let gc = getter c and ga = getter a and gb = getter b in
      fun st fr ->
        ch_select st;
        fr.fr_regs.(r) <-
          (if Int64.equal (Mval.as_int (gc fr)) 0L then gb fr else ga fr);
        next st fr
    | Psancheck ->
      fun st fr ->
        ch_sancheck st;
        next st fr
    | Ploc (line, col) ->
      (* provenance marker: free, exactly like the interpreter *)
      fun st fr ->
        fr.fr_line <- line;
        fr.fr_col <- col;
        next st fr
    | Pcall (r, callee, pargs, scalars) ->
      let na = Array.length pargs in
      let gs = Array.map getter pargs in
      let eval_args fr =
        let argv = Array.make na Mval.zero in
        for k = 0 to na - 1 do
          argv.(k) <- gs.(k) fr
        done;
        argv
      in
      let finish : frame -> Mval.t option -> unit =
        if r < 0 then fun _ _ -> ()
        else fun fr res ->
          fr.fr_regs.(r) <- (match res with Some v -> v | None -> Mval.zero)
      in
      (match callee with
      | Pdirect tgt -> begin
        (* the link pass ran before execution began: [!tgt] is stable,
           so the target resolves at compile time *)
        match !tgt with
        | Tgt_user callee_pf ->
          fun st fr ->
            ch_call st;
            ctrs.c_calls <- ctrs.c_calls + 1;
            finish fr (call_function st callee_pf (eval_args fr) scalars);
            next st fr
        | Tgt_builtin fn ->
          fun st fr ->
            ch_call st;
            ctrs.c_calls <- ctrs.c_calls + 1;
            finish fr (fn st (eval_args fr));
            next st fr
        | Tgt_unknown name ->
          fun st fr ->
            ch_call st;
            ctrs.c_calls <- ctrs.c_calls + 1;
            ignore (eval_args fr);
            failwith ("interp: unknown builtin " ^ name)
      end
      | Pindirect (v, ic) ->
        let gv = getter v in
        fun st fr ->
          ch_call st;
          ctrs.c_calls <- ctrs.c_calls + 1;
          let argv = eval_args fr in
          (match Mval.as_ptr ctx (gv fr) with
          | Mobject.Pfunc name ->
            let tgt =
              if name == ic.ic_name || String.equal name ic.ic_name then begin
                if obs then os.os_ic_hit <- os.os_ic_hit + 1;
                ic.ic_target
              end
              else begin
                if obs then os.os_ic_miss <- os.os_ic_miss + 1;
                let t = resolve_callee st name in
                ic.ic_name <- name;
                ic.ic_target <- t;
                t
              end
            in
            finish fr (exec_target st tgt argv scalars)
          | Mobject.Pnull -> Merror.raise_error Merror.Null_deref ctx
          | Mobject.Pobj _ | Mobject.Pinvalid _ ->
            Merror.raise_error
              (Merror.Type_violation "indirect call through a data pointer")
              ctx);
          next st fr)
  in

  (* --- blocks: fold the instruction chain onto the terminator, fusing
     a trailing icmp into its condbr when the compare register is dead
     otherwise (its only read is the branch itself) --- *)
  let compile_block (blk : pblock) : cont =
    let n = Array.length blk.pb_instrs in
    let fused =
      if n = 0 then None
      else
        match (blk.pb_instrs.(n - 1), blk.pb_term) with
        | Picmp (r, op, s, a, b), Pcondbr (Preg rc, ta, tb)
          when rc = r && uses.(r) = 1 && small s ->
          let cmp = iicmp_fn op s in
          (* two charges, exactly like the unfused icmp + terminator *)
          (match (a, b, edge_plain ta, edge_plain tb) with
          | Preg ra, Preg rb, Some ca, Some cb
            when unboxed.(ra) && unboxed.(rb) ->
            (* the whole loop-control idiom in one closure: native
               compare of two unboxed registers, direct cell jump *)
            Some
              (fun st fr ->
                ch_icmp st;
                let ir = fr.fr_iregs in
                let taken =
                  cmp (Array.unsafe_get ir ra) (Array.unsafe_get ir rb)
                in
                ch_term st;
                if taken then !ca st fr else !cb st fr)
          | a, b, Some ca, Some cb ->
            let ga = iget a and gb = iget b in
            Some
              (fun st fr ->
                ch_icmp st;
                let y = gb fr in
                let taken = cmp (ga fr) y in
                ch_term st;
                if taken then !ca st fr else !cb st fr)
          | a, b, _, _ ->
            let ka = compile_edge ta and kb = compile_edge tb in
            (match (a, b) with
            | Preg ra, Preg rb when unboxed.(ra) && unboxed.(rb) ->
              Some
                (fun st fr ->
                  ch_icmp st;
                  let ir = fr.fr_iregs in
                  let taken =
                    cmp (Array.unsafe_get ir ra) (Array.unsafe_get ir rb)
                  in
                  ch_term st;
                  if taken then ka st fr else kb st fr)
            | a, b ->
              let ga = iget a and gb = iget b in
              Some
                (fun st fr ->
                  ch_icmp st;
                  let y = gb fr in
                  let taken = cmp (ga fr) y in
                  ch_term st;
                  if taken then ka st fr else kb st fr)))
        | Picmp (r, op, s, a, b), Pcondbr (Preg rc, ta, tb)
          when rc = r && uses.(r) = 1 ->
          let cmp = icmp_fn op s in
          let ka = compile_edge ta and kb = compile_edge tb in
          let ga = getter a and gb = getter b in
          Some
            (fun st fr ->
              ch_icmp st;
              let y = Mval.as_int (gb fr) in
              let taken = cmp (Mval.as_int (ga fr)) y in
              ch_term st;
              if taken then ka st fr else kb st fr)
        | _ -> None
    in
    let seed, upto =
      match fused with
      | Some k -> (k, n - 2)
      | None -> (compile_term blk.pb_term, n - 1)
    in
    let rec build i acc =
      if i < 0 then acc else build (i - 1) (compile_instr blk.pb_instrs.(i) acc)
    in
    build upto seed
  in

  for j = 0 to nblocks - 1 do
    cells.(j) := compile_block pf.pf_blocks.(j)
  done;
  if nblocks = 0 then fun _st _fr ->
    (* same failure as the interpreter touching [pf_blocks.(0)] *)
    ignore pf.pf_blocks.(0);
    assert false
  else begin
    let entry = compile_jump pf.pf_entry_copies cells.(0) in
    let ni = pf.pf_nregs in
    if Array.exists Fun.id unboxed then
      (* the unboxed register file, one flat int array per invocation *)
      fun st fr ->
        fr.fr_iregs <- Array.make ni 0;
        entry st fr
    else entry
  end
