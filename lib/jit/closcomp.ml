(** Tier-2 closure compiler (DESIGN.md §9, §11).

    Translates a prepared function ([Interp.pfunc], the output of the
    prepare -> link pipeline) into nested OCaml closures: one closure
    per basic block held in a cell array (so branches are direct
    threaded — a cell dereference plus an OCaml tail call), one closure
    per instruction chained through its continuation, phi parallel
    copies compiled onto the edges, and every compile-time-known
    decision hoisted out of the run-time path: opcode dispatch, operand
    shapes (register vs pre-boxed immediate), scalar-width
    normalization, the memento-observation predicate, the function's
    error-context string, and resolved direct-call targets.

    On top of that, compiled code keeps provably-classified registers
    *unboxed* in flat side arrays instead of [fr_regs] (DESIGN.md §11):

    - [Rint] ([frame.fr_iregs]): every writer is a <=32-bit integer
      producer (narrow load, binop, compare, int cast — and, through a
      fixpoint, phi/select moves of such registers).
    - [Rfloat] ([frame.fr_fregs]): every writer is a float producer
      (F32/F64 load, float binop, float cast).  The array holds exactly
      the float a [Vfloat] box would (F32 results stored pre-rounded),
      so re-boxing on escape is bit-identical.
    - [Rptr] ([frame.fr_pobj]/[fr_poff], pointee and byte offset split):
      every writer provably produces an object pointer — an alloca, a
      GEP whose base is itself [Rptr] or a global immediate, or a move
      of such a register.  Loads through these skip the pointer-shape
      dispatch entirely.

    Unboxed registers never allocate a box and never pay the OCaml
    write barrier, and narrow/float loads and stores hit an inlined
    fast path on the managed object's bytes (identical checks, in the
    identical order) instead of calling through [Mobject].  This is
    sound because a frame's register file is invisible outside the
    function's own code: calls receive re-boxed arguments, returns
    re-box the result, and after a managed error the provenance replay
    re-executes from scratch in the interpreter, never reading the dead
    frame.

    Two more §11 features ride on the same machinery:

    - *Hot-call inlining*: a direct call to a small leaf callee is
      compiled as a register-translated instance of the callee's blocks
      living at a disjoint window of the caller's (enlarged) register
      file, replicating the interpreter's call protocol — argument
      evaluation, the depth guard, per-callee counters and step charges
      — without the [call_function] frame push/pop.
    - *On-stack replacement* ([cb_osr]): functions with loop headers
      also get an OSR entry that transfers a live interpreter frame
      into the compiled register files and resumes at the loop-header
      block, so a single long-running invocation can tier up mid-call.

    The contract is *observable bit-equivalence* with the interpreter:
    identical program output, identical managed errors at the same
    operation, and identical [steps] accounting — every operation still
    charges the step budget individually, so a step-limit timeout fires
    at exactly the same point in either tier.  What compiled code is
    allowed to drop is pure interpreter overhead: dispatch matches,
    per-op metrics branches when metrics are off, value boxing that no
    observer can distinguish, and dead compare registers (the
    icmp/fcmp+condbr fusion below, applied only when the compare
    register has no other reader). *)

open Interp

type cont = state -> frame -> Mval.t option

(* Pre-boxed booleans: compare results are immutable, so sharing one box
   is indistinguishable from the interpreter's fresh [Vint]s. *)
let vtrue = Mval.Vint 1L
let vfalse = Mval.Vint 0L

(* ------------------------------------------------------------------ *)
(* Compile-time specialization helpers                                 *)
(* ------------------------------------------------------------------ *)

(** Width normalization with the identity widths resolved at compile
    time ([Irtype.normalize_int] is the identity on I64/Ptr). *)
let normalizer (s : Irtype.scalar) : int64 -> int64 =
  match s with
  | Irtype.I64 | Irtype.Ptr -> fun v -> v
  | s -> Irtype.normalize_int s

(** [Interp.deref] with the error-context string captured at compile
    time instead of recovered from the frame stack per access. *)
let deref_c (ctx : string) (pm : Mval.t) : Mobject.addr =
  match Mval.as_ptr ctx pm with
  | Mobject.Pobj a -> a
  | Mobject.Pnull -> Merror.raise_error Merror.Null_deref ctx
  | Mobject.Pfunc name ->
    Merror.raise_error
      (Merror.Type_violation ("dereference of function pointer &" ^ name))
      ctx
  | Mobject.Pinvalid c ->
    Merror.raise_error
      (Merror.Type_violation
         (Printf.sprintf "dereference of forged pointer 0x%Lx" c))
      ctx

(* ------------- boxed (int64) operator specialization ------------- *)

(** One fully resolved integer/float binop, dispatched once at compile
    time (the interpreter re-matches the opcode per execution).  The
    semantics — including the division-by-zero check, unsigned
    reinterpretation and result normalization — mirror
    [Interp.exec_binop] exactly. *)
let binop_fn (ctx : string) (op : Instr.binop) (s : Irtype.scalar) :
    Mval.t -> Mval.t -> Mval.t =
  let norm = normalizer s in
  match op with
  | Instr.FAdd when s = Irtype.F32 ->
    fun a b ->
      Mval.Vfloat (Irtype.round_to_f32 (Mval.as_float a +. Mval.as_float b))
  | Instr.FSub when s = Irtype.F32 ->
    fun a b ->
      Mval.Vfloat (Irtype.round_to_f32 (Mval.as_float a -. Mval.as_float b))
  | Instr.FMul when s = Irtype.F32 ->
    fun a b ->
      Mval.Vfloat (Irtype.round_to_f32 (Mval.as_float a *. Mval.as_float b))
  | Instr.FDiv when s = Irtype.F32 ->
    fun a b ->
      Mval.Vfloat (Irtype.round_to_f32 (Mval.as_float a /. Mval.as_float b))
  | Instr.FAdd -> fun a b -> Mval.Vfloat (Mval.as_float a +. Mval.as_float b)
  | Instr.FSub -> fun a b -> Mval.Vfloat (Mval.as_float a -. Mval.as_float b)
  | Instr.FMul -> fun a b -> Mval.Vfloat (Mval.as_float a *. Mval.as_float b)
  | Instr.FDiv -> fun a b -> Mval.Vfloat (Mval.as_float a /. Mval.as_float b)
  | Instr.Add ->
    fun a b -> Mval.Vint (norm (Int64.add (Mval.as_int a) (Mval.as_int b)))
  | Instr.Sub ->
    fun a b -> Mval.Vint (norm (Int64.sub (Mval.as_int a) (Mval.as_int b)))
  | Instr.Mul ->
    fun a b -> Mval.Vint (norm (Int64.mul (Mval.as_int a) (Mval.as_int b)))
  | Instr.Sdiv ->
    fun a b ->
      let x = Mval.as_int a and y = Mval.as_int b in
      if Int64.equal y 0L then Merror.raise_error Merror.Division_by_zero ctx;
      Mval.Vint (norm (Int64.div x y))
  | Instr.Udiv ->
    let u = Irtype.unsigned_of s in
    fun a b ->
      let x = Mval.as_int a and y = Mval.as_int b in
      if Int64.equal y 0L then Merror.raise_error Merror.Division_by_zero ctx;
      Mval.Vint (norm (Int64.unsigned_div (u x) (u y)))
  | Instr.Srem ->
    fun a b ->
      let x = Mval.as_int a and y = Mval.as_int b in
      if Int64.equal y 0L then Merror.raise_error Merror.Division_by_zero ctx;
      Mval.Vint (norm (Int64.rem x y))
  | Instr.Urem ->
    let u = Irtype.unsigned_of s in
    fun a b ->
      let x = Mval.as_int a and y = Mval.as_int b in
      if Int64.equal y 0L then Merror.raise_error Merror.Division_by_zero ctx;
      Mval.Vint (norm (Int64.unsigned_rem (u x) (u y)))
  | Instr.Shl ->
    fun a b ->
      Mval.Vint
        (norm
           (Int64.shift_left (Mval.as_int a)
              (Int64.to_int (Mval.as_int b) land 63)))
  | Instr.Lshr ->
    let u = Irtype.unsigned_of s in
    fun a b ->
      Mval.Vint
        (norm
           (Int64.shift_right_logical
              (u (Mval.as_int a))
              (Int64.to_int (Mval.as_int b) land 63)))
  | Instr.Ashr ->
    fun a b ->
      Mval.Vint
        (norm
           (Int64.shift_right (Mval.as_int a)
              (Int64.to_int (Mval.as_int b) land 63)))
  | Instr.And ->
    fun a b -> Mval.Vint (norm (Int64.logand (Mval.as_int a) (Mval.as_int b)))
  | Instr.Or ->
    fun a b -> Mval.Vint (norm (Int64.logor (Mval.as_int a) (Mval.as_int b)))
  | Instr.Xor ->
    fun a b -> Mval.Vint (norm (Int64.logxor (Mval.as_int a) (Mval.as_int b)))

(** Integer comparison as a raw [bool], opcode resolved at compile time.
    [Int64.equal]/[Int64.compare] agree with the interpreter's
    polymorphic comparisons on int64 but skip the generic entry. *)
let icmp_fn (op : Instr.icmp) (s : Irtype.scalar) : int64 -> int64 -> bool =
  match op with
  | Instr.Ieq -> fun x y -> Int64.equal x y
  | Instr.Ine -> fun x y -> not (Int64.equal x y)
  | Instr.Islt -> fun x y -> Int64.compare x y < 0
  | Instr.Isle -> fun x y -> Int64.compare x y <= 0
  | Instr.Isgt -> fun x y -> Int64.compare x y > 0
  | Instr.Isge -> fun x y -> Int64.compare x y >= 0
  | Instr.Iult ->
    let u = Irtype.unsigned_of s in
    fun x y -> Int64.unsigned_compare (u x) (u y) < 0
  | Instr.Iule ->
    let u = Irtype.unsigned_of s in
    fun x y -> Int64.unsigned_compare (u x) (u y) <= 0
  | Instr.Iugt ->
    let u = Irtype.unsigned_of s in
    fun x y -> Int64.unsigned_compare (u x) (u y) > 0
  | Instr.Iuge ->
    let u = Irtype.unsigned_of s in
    fun x y -> Int64.unsigned_compare (u x) (u y) >= 0

(* ------------- unboxed (native float) operator specialization ----- *)

(** [Interp.exec_binop] on raw floats: F32 results round through
    [Irtype.round_to_f32] exactly like [Irtype.round_result], F64
    results are untouched.  Only defined for the four float opcodes. *)
let fbinop_fn (op : Instr.binop) (s : Irtype.scalar) : float -> float -> float
    =
  if s = Irtype.F32 then
    match op with
    | Instr.FAdd -> fun a b -> Irtype.round_to_f32 (a +. b)
    | Instr.FSub -> fun a b -> Irtype.round_to_f32 (a -. b)
    | Instr.FMul -> fun a b -> Irtype.round_to_f32 (a *. b)
    | Instr.FDiv -> fun a b -> Irtype.round_to_f32 (a /. b)
    | _ -> invalid_arg "Closcomp.fbinop_fn: integer op"
  else
    match op with
    | Instr.FAdd -> fun a b -> a +. b
    | Instr.FSub -> fun a b -> a -. b
    | Instr.FMul -> fun a b -> a *. b
    | Instr.FDiv -> fun a b -> a /. b
    | _ -> invalid_arg "Closcomp.fbinop_fn: integer op"

(** [Interp.exec_fcmp] as a raw [bool] on raw floats.  The operands are
    float-typed so OCaml compiles IEEE comparisons (NaN-correct, no
    polymorphic compare). *)
let fcmp_fn (op : Instr.fcmp) : float -> float -> bool =
  match op with
  | Instr.Feq -> fun (x : float) (y : float) -> x = y
  | Instr.Fne -> fun (x : float) (y : float) -> x <> y
  | Instr.Flt -> fun (x : float) (y : float) -> x < y
  | Instr.Fle -> fun (x : float) (y : float) -> x <= y
  | Instr.Fgt -> fun (x : float) (y : float) -> x > y
  | Instr.Fge -> fun (x : float) (y : float) -> x >= y

(* ------------- unboxed (native int) operator specialization ------- *)

(** Scalars whose normalized values always fit an OCaml native [int]
    (63 bits) with room to spare: the unboxed register file holds
    exactly the int64 the interpreter's [Vint] would hold. *)
let small = function
  | Irtype.I1 | Irtype.I8 | Irtype.I16 | Irtype.I32 -> true
  | Irtype.I64 | Irtype.Ptr | Irtype.F32 | Irtype.F64 -> false

let ibits = function
  | Irtype.I1 -> 1
  | Irtype.I8 -> 8
  | Irtype.I16 -> 16
  | Irtype.I32 -> 32
  | _ -> invalid_arg "Closcomp.ibits: not a small scalar"

let imask s = (1 lsl ibits s) - 1

(** [Irtype.normalize_int] on native ints: sign-extend from the low
    [ibits s] bits (I1 normalizes to 0/1, not a sign bit). *)
let inorm (s : Irtype.scalar) : int -> int =
  if s = Irtype.I1 then fun v -> v land 1
  else
    let sh = 63 - ibits s in
    fun v -> (v lsl sh) asr sh

(** [Interp.exec_binop] on native ints, valid for small scalars: on
    normalized <=32-bit inputs every intermediate fits 63 bits (a
    product only needs its low 32 bits, which wrap identically mod 2^63
    and mod 2^64), so the normalized result is bit-identical to the
    interpreter's int64 computation. *)
let ibinop_fn (ctx : string) (op : Instr.binop) (s : Irtype.scalar) :
    int -> int -> int =
  let norm = inorm s in
  let mask = imask s in
  match op with
  | Instr.Add -> fun x y -> norm (x + y)
  | Instr.Sub -> fun x y -> norm (x - y)
  | Instr.Mul -> fun x y -> norm (x * y)
  | Instr.Sdiv ->
    fun x y ->
      if y = 0 then Merror.raise_error Merror.Division_by_zero ctx;
      norm (x / y)
  | Instr.Udiv ->
    fun x y ->
      if y = 0 then Merror.raise_error Merror.Division_by_zero ctx;
      norm ((x land mask) / (y land mask))
  | Instr.Srem ->
    fun x y ->
      if y = 0 then Merror.raise_error Merror.Division_by_zero ctx;
      norm (x mod y)
  | Instr.Urem ->
    fun x y ->
      if y = 0 then Merror.raise_error Merror.Division_by_zero ctx;
      norm ((x land mask) mod (y land mask))
  | Instr.Shl -> fun x y -> norm (x lsl (y land 63))
  | Instr.Lshr -> fun x y -> norm ((x land mask) lsr (y land 63))
  | Instr.Ashr -> fun x y -> norm (x asr (y land 63))
  | Instr.And -> fun x y -> norm (x land y)
  | Instr.Or -> fun x y -> norm (x lor y)
  | Instr.Xor -> fun x y -> norm (x lxor y)
  | Instr.FAdd | Instr.FSub | Instr.FMul | Instr.FDiv ->
    invalid_arg "Closcomp.ibinop_fn: float op"

(** [Interp.exec_icmp] on native ints, valid for small scalars. *)
let iicmp_fn (op : Instr.icmp) (s : Irtype.scalar) : int -> int -> bool =
  let mask = imask s in
  match op with
  | Instr.Ieq -> fun x y -> x = y
  | Instr.Ine -> fun x y -> x <> y
  | Instr.Islt -> fun x y -> x < y
  | Instr.Isle -> fun x y -> x <= y
  | Instr.Isgt -> fun x y -> x > y
  | Instr.Isge -> fun x y -> x >= y
  | Instr.Iult -> fun x y -> x land mask < y land mask
  | Instr.Iule -> fun x y -> x land mask <= y land mask
  | Instr.Iugt -> fun x y -> x land mask > y land mask
  | Instr.Iuge -> fun x y -> x land mask >= y land mask

(* ------------------------------------------------------------------ *)
(* Register translation (inlined callee instances)                     *)
(* ------------------------------------------------------------------ *)

(* An inlined callee's blocks are re-registered at a disjoint window
   [base, base + callee.pf_nregs) of the caller's merged register file.
   Block indices stay instance-local: each instance gets its own cell
   array, so edges never need renumbering. *)

let shift_pval base = function Preg r -> Preg (r + base) | v -> v

let shift_copies base = function
  | Pc_copy (dests, srcs) ->
    Pc_copy (Array.map (fun d -> d + base) dests, Array.map (shift_pval base) srcs)
  | (Pc_none | Pc_missing) as c -> c

let shift_edge base = function
  | Edge (i, c) -> Edge (i, shift_copies base c)
  | Edge_unknown _ as e -> e

let shift_term base = function
  | Pret (Some v) -> Pret (Some (shift_pval base v))
  | Pret None -> Pret None
  | Pbr e -> Pbr (shift_edge base e)
  | Pcondbr (c, a, b) ->
    Pcondbr (shift_pval base c, shift_edge base a, shift_edge base b)
  | Pswitch (v, impl, d) ->
    let impl =
      match impl with
      | Sw_linear (keys, es) -> Sw_linear (keys, Array.map (shift_edge base) es)
      | Sw_table tbl ->
        let t = Hashtbl.create (2 * Hashtbl.length tbl) in
        Hashtbl.iter (fun k e -> Hashtbl.replace t k (shift_edge base e)) tbl;
        Sw_table t
    in
    Pswitch (shift_pval base v, impl, shift_edge base d)
  | Punreachable -> Punreachable

let shift_gep base (g : pgep) : pgep =
  { g with pg_dyn = Array.map (fun (v, s) -> (shift_pval base v, s)) g.pg_dyn }

let shift_instr base = function
  | Palloca (r, mty, size) -> Palloca (r + base, mty, size)
  | Pload (r, s, p) -> Pload (r + base, s, shift_pval base p)
  | Pstore (s, v, p) -> Pstore (s, shift_pval base v, shift_pval base p)
  | Pgep (r, b, g) -> Pgep (r + base, shift_pval base b, shift_gep base g)
  | Pbinop (r, op, s, a, b, cls) ->
    Pbinop (r + base, op, s, shift_pval base a, shift_pval base b, cls)
  | Picmp (r, op, s, a, b) ->
    Picmp (r + base, op, s, shift_pval base a, shift_pval base b)
  | Pfcmp (r, op, a, b) ->
    Pfcmp (r + base, op, shift_pval base a, shift_pval base b)
  | Pcast (r, op, from, into, v) -> Pcast (r + base, op, from, into, shift_pval base v)
  | Pselect (r, c, a, b) ->
    Pselect (r + base, shift_pval base c, shift_pval base a, shift_pval base b)
  | Psancheck -> Psancheck
  | Ploc (l, c) -> Ploc (l, c)
  | Pcall (r, callee, args, scalars) ->
    (* unreachable for leaf callees (the only ones instantiated); kept
       total so the translation has no implicit assumptions *)
    let callee =
      match callee with
      | Pdirect _ as c -> c
      | Pindirect (v, ic) -> Pindirect (shift_pval base v, ic)
    in
    Pcall ((if r >= 0 then r + base else r), callee, Array.map (shift_pval base) args, scalars)

let shift_block base (blk : pblock) : pblock =
  {
    blk with
    pb_instrs = Array.map (shift_instr base) blk.pb_instrs;
    pb_term = shift_term base blk.pb_term;
  }

(* ------------------------------------------------------------------ *)
(* Inline planning                                                     *)
(* ------------------------------------------------------------------ *)

(** One inlinable direct-call site, keyed by (block index, instruction
    index) in the caller. *)
type inline_site = {
  is_callee : pfunc;
  is_base : int;  (** register-window offset in the merged file *)
  is_blocks : pblock array;  (** callee blocks, shifted by [is_base] *)
  is_params : int array;  (** absolute (shifted) parameter registers *)
}

let is_leaf (pf : pfunc) : bool =
  Array.for_all
    (fun blk ->
      Array.for_all
        (function Pcall _ -> false | _ -> true)
        blk.pb_instrs)
    pf.pf_blocks

let static_size (pf : pfunc) : int =
  Array.fold_left
    (fun acc blk -> acc + Array.length blk.pb_instrs + 1)
    0 pf.pf_blocks

(** Pick the direct-call sites to inline (DESIGN.md §11 cost model):
    leaf, non-variadic callees with a plain entry — tiny ones always,
    mid-sized ones once their profile is hot — within a per-caller
    instruction budget.  Inlining elides the [call_function] frame
    push, which is only sound because a leaf callee can never observe
    the frame stack (no builtins, no varargs, no nested calls) — and
    call tracing / eager provenance, which do observe it, disable
    inlining wholesale. *)
let plan_inlines (st0 : state) (pf : pfunc) :
    (int * int, inline_site) Hashtbl.t * int =
  let sites : (int * int, inline_site) Hashtbl.t = Hashtbl.create 8 in
  let next_base = ref pf.pf_nregs in
  let budget = ref Costmodel.inline_budget_instrs in
  if st0.trace = None && not st0.provenance then
    Array.iteri
      (fun bi blk ->
        Array.iteri
          (fun ii instr ->
            match instr with
            | Pcall (_, Pdirect tgt, _, _) -> begin
              match !tgt with
              | Tgt_user callee
                when callee != pf
                     && (match callee.pf_tier with
                        | Tier_deopt -> false
                        | Tier_interp | Tier_compiled _ -> true)
                     && (not callee.pf_variadic)
                     && callee.pf_entry_copies = Pc_none
                     && Array.length callee.pf_blocks > 0
                     && is_leaf callee ->
                let size = static_size callee in
                let hot =
                  Hotness.total_ops callee.pf_counters
                  >= Costmodel.inline_hot_callee_ops
                in
                if
                  (size <= Costmodel.inline_always_instrs
                  || (hot && size <= Costmodel.inline_max_callee_instrs))
                  && size <= !budget
                then begin
                  Events.record
                    (Events.Inline_accept
                       {
                         ev_caller = pf.pf_name;
                         ev_callee = callee.pf_name;
                         ev_size = size;
                         ev_budget = !budget;
                       });
                  budget := !budget - size;
                  let base = !next_base in
                  next_base := base + callee.pf_nregs;
                  Hashtbl.replace sites (bi, ii)
                    {
                      is_callee = callee;
                      is_base = base;
                      is_blocks = Array.map (shift_block base) callee.pf_blocks;
                      is_params =
                        Array.map (fun r -> r + base) callee.pf_param_regs;
                    }
                end
                else
                  (* An inlinable-shaped site the cost model turned
                     down: record which number said no. *)
                  Events.record
                    (Events.Inline_reject
                       {
                         ev_caller = pf.pf_name;
                         ev_callee = callee.pf_name;
                         ev_size = size;
                         ev_budget = !budget;
                         ev_reason =
                           (if size > !budget then "over caller budget"
                            else if hot then
                              "hot but over inline_max_callee_instrs"
                            else "cold and over inline_always_instrs");
                       })
              | _ -> ()
            end
            | _ -> ())
          blk.pb_instrs)
      pf.pf_blocks;
  (sites, !next_base)

(* ------------------------------------------------------------------ *)
(* Register classification                                             *)
(* ------------------------------------------------------------------ *)

(** How many prepared operands read register [r] anywhere in the merged
    function (instruction operands, terminators, phi-copy sources,
    dynamic GEP indices, across the caller and every inlined instance).
    Used to prove a compare register dead for the cmp+condbr fusion;
    sound across instances because register windows are disjoint. *)
let reg_use_counts_of (blocks_list : pblock array list) (entry : phicopy)
    (nregs : int) : int array =
  let uses = Array.make nregs 0 in
  let pv = function
    | Preg r -> uses.(r) <- uses.(r) + 1
    | Pimm _ | Pfail _ -> ()
  in
  let copies = function
    | Pc_copy (_, srcs) -> Array.iter pv srcs
    | Pc_none | Pc_missing -> ()
  in
  let edge = function Edge (_, c) -> copies c | Edge_unknown _ -> () in
  let term = function
    | Pret (Some v) -> pv v
    | Pret None | Punreachable -> ()
    | Pbr e -> edge e
    | Pcondbr (c, a, b) ->
      pv c;
      edge a;
      edge b
    | Pswitch (v, impl, d) ->
      pv v;
      edge d;
      (match impl with
      | Sw_linear (_, es) -> Array.iter edge es
      | Sw_table tbl -> Hashtbl.iter (fun _ e -> edge e) tbl)
  in
  let instr = function
    | Palloca _ | Psancheck | Ploc _ -> ()
    | Pload (_, _, p) -> pv p
    | Pstore (_, v, p) ->
      pv v;
      pv p
    | Pgep (_, b, g) ->
      pv b;
      Array.iter (fun (v, _) -> pv v) g.pg_dyn
    | Pbinop (_, _, _, a, b, _) ->
      pv a;
      pv b
    | Picmp (_, _, _, a, b) ->
      pv a;
      pv b
    | Pfcmp (_, _, a, b) ->
      pv a;
      pv b
    | Pcast (_, _, _, _, v) -> pv v
    | Pselect (_, c, a, b) ->
      pv c;
      pv a;
      pv b
    | Pcall (_, callee, args, _) ->
      (match callee with Pindirect (v, _) -> pv v | Pdirect _ -> ());
      Array.iter pv args
  in
  List.iter
    (Array.iter (fun blk ->
         Array.iter instr blk.pb_instrs;
         term blk.pb_term))
    blocks_list;
  copies entry;
  uses

(* ------------------------------------------------------------------ *)
(* Scalar replacement of allocas (virtual stack slots)                 *)
(* ------------------------------------------------------------------ *)

(** Plan which allocas compile to virtual stack slots (DESIGN.md §11).
    A register [r] qualifies when

    - its only writer is a single [Palloca] of exactly one scalar
      ([MScalar s] with the matching byte size), sitting in its
      instance's entry block, and that entry block is not a branch
      target — so the alloca executes first, before any access, and
      re-executes only when the whole instance re-enters (which is
      exactly when a fresh object would be allocated);
    - every other appearance of [r] is as the *pointer* operand of a
      [Pload]/[Pstore] of that same scalar [s] (a whole-slot access at
      offset 0), at an instruction position the alloca precedes;
    - the scalar is not [Ptr]: a pointer store's slot-table and cookie
      registrations are side effects of the object, which a virtual
      slot does not have.

    Such a slot's object is unobservable — its address never escapes,
    so no other pointer, free, or forged cookie can reach it — and the
    compiled code keeps the value in a register of the scalar's class
    instead, replaying the memory round trip on every access
    ([normalize_int], f32 bit-rounding, [as_int] pointer degradation)
    so values, errors and side effects stay bit-identical to the real
    memory path.  The allocation id the real object would consume is
    still ticked ([Mobject.fresh_id]), keeping every later allocation's
    id — observable through pointer cookies — exactly as interpreted.
    Slots are per-instance, so an inlined callee's locals qualify
    independently of its caller's. *)
let plan_slots (blocks_list : pblock array list) (entry : phicopy)
    (boxed_roots : int array list) (nregs : int) :
    (int, Irtype.scalar) Hashtbl.t =
  let scalar_of : Irtype.scalar option array = Array.make nregs None in
  let pos_of = Array.make nregs (-1) in
  let inst_of : pblock array array = Array.make nregs [||] in
  let writes = Array.make nregs 0 in
  let disq = Array.make nregs false in
  let kill r = if r >= 0 && r < nregs then disq.(r) <- true in
  let pv = function Preg r -> kill r | Pimm _ | Pfail _ -> () in
  let wr r = if r >= 0 && r < nregs then writes.(r) <- writes.(r) + 1 in
  (* pass 1: candidate allocas and write counts *)
  List.iter
    (fun blocks ->
      let entry_pred = ref false in
      let edge = function
        | Edge (0, _) -> entry_pred := true
        | Edge _ | Edge_unknown _ -> ()
      in
      Array.iter
        (fun blk ->
          match blk.pb_term with
          | Pret _ | Punreachable -> ()
          | Pbr e -> edge e
          | Pcondbr (_, a, b) ->
            edge a;
            edge b
          | Pswitch (_, impl, d) ->
            edge d;
            (match impl with
            | Sw_linear (_, es) -> Array.iter edge es
            | Sw_table tbl -> Hashtbl.iter (fun _ e -> edge e) tbl))
        blocks;
      let entry_pred = !entry_pred in
      Array.iteri
        (fun bi blk ->
          Array.iteri
            (fun ii i ->
              match i with
              | Palloca (r, mty, size) -> begin
                wr r;
                match mty with
                | Irtype.MScalar s
                  when bi = 0 && (not entry_pred) && s <> Irtype.Ptr
                       && size = Irtype.scalar_size s && r >= 0 && r < nregs ->
                  scalar_of.(r) <- Some s;
                  pos_of.(r) <- ii;
                  inst_of.(r) <- blocks
                | _ -> kill r
              end
              | Pload (r, _, _)
              | Pgep (r, _, _)
              | Pbinop (r, _, _, _, _, _)
              | Picmp (r, _, _, _, _)
              | Pfcmp (r, _, _, _)
              | Pcast (r, _, _, _, _)
              | Pselect (r, _, _, _) -> wr r
              | Pcall (r, _, _, _) -> if r >= 0 then wr r
              | Pstore _ | Psancheck | Ploc _ -> ())
            blk.pb_instrs)
        blocks)
    blocks_list;
  (* pass 2: every use must be a whole-slot access of the candidate's
     scalar, positioned after the alloca; anything else disqualifies *)
  let slot_use blocks bi ii r s =
    match scalar_of.(r) with
    | Some s0
      when s0 = s && not (blocks == inst_of.(r) && bi = 0 && ii < pos_of.(r))
      -> ()
    | _ -> kill r
  in
  let copies = function
    | Pc_copy (dests, srcs) ->
      Array.iter wr dests;
      Array.iter pv srcs
    | Pc_none | Pc_missing -> ()
  in
  let edge = function Edge (_, c) -> copies c | Edge_unknown _ -> () in
  List.iter
    (fun blocks ->
      Array.iteri
        (fun bi blk ->
          Array.iteri
            (fun ii i ->
              match i with
              | Palloca _ | Psancheck | Ploc _ -> ()
              | Pload (_, s, p) -> begin
                match p with
                | Preg r when r >= 0 && r < nregs && scalar_of.(r) <> None ->
                  slot_use blocks bi ii r s
                | p -> pv p
              end
              | Pstore (s, v, p) -> begin
                pv v;
                match p with
                | Preg r when r >= 0 && r < nregs && scalar_of.(r) <> None ->
                  slot_use blocks bi ii r s
                | p -> pv p
              end
              | Pgep (_, b, g) ->
                pv b;
                Array.iter (fun (v, _) -> pv v) g.pg_dyn
              | Pbinop (_, _, _, a, b, _) ->
                pv a;
                pv b
              | Picmp (_, _, _, a, b) ->
                pv a;
                pv b
              | Pfcmp (_, _, a, b) ->
                pv a;
                pv b
              | Pcast (_, _, _, _, v) -> pv v
              | Pselect (_, c, a, b) ->
                pv c;
                pv a;
                pv b
              | Pcall (_, callee, args, _) ->
                (match callee with Pindirect (v, _) -> pv v | Pdirect _ -> ());
                Array.iter pv args)
            blk.pb_instrs;
          match blk.pb_term with
          | Pret (Some v) -> pv v
          | Pret None | Punreachable -> ()
          | Pbr e -> edge e
          | Pcondbr (c, a, b) ->
            pv c;
            edge a;
            edge b
          | Pswitch (v, impl, d) ->
            pv v;
            edge d;
            (match impl with
            | Sw_linear (_, es) -> Array.iter edge es
            | Sw_table tbl -> Hashtbl.iter (fun _ e -> edge e) tbl))
        blocks)
    blocks_list;
  copies entry;
  List.iter (Array.iter kill) boxed_roots;
  let slots = Hashtbl.create 16 in
  Array.iteri
    (fun r so ->
      match so with
      | Some s when (not disq.(r)) && writes.(r) = 1 -> Hashtbl.add slots r s
      | _ -> ())
    scalar_of;
  slots

(* A register's writer, for the unboxed classification analyses. *)
type writer =
  | Wyes  (** produces a value of the analysis' class *)
  | Wno  (** produces anything else *)
  | Wdep of int  (** moves another register's value (phi copy, select) *)

(** A register's storage class in compiled code (DESIGN.md §11). *)
type rclass =
  | Rint  (** unboxed native int in [fr_iregs] *)
  | Rfloat  (** unboxed float in [fr_fregs] *)
  | Rptr  (** unboxed object pointer in [fr_pobj]/[fr_poff] *)
  | Rbox  (** boxed [Mval.t] in [fr_regs] *)

(** Classify every register of the merged file.  Three independent
    writer analyses (int / float / object-pointer) share one walk; each
    runs the same fixpoint as the original small-int analysis — a
    register is unboxed in a class iff it has at least one writer,
    every concrete writer produces that class, and every register it
    is moved from is unboxed in that class too.  The classes' concrete
    writer sets are disjoint, so at most one analysis marks a register
    with a concrete writer; pure-move cycles (no concrete writer
    anywhere) can satisfy several analyses at once and are resolved by
    priority int > float > ptr — such registers only ever hold their
    initial zero, which every class represents identically.
    [boxed_roots] (parameter registers: caller's and each inlined
    instance's, written boxed by the call protocol) are forced [Rbox].
    [slots] (scalar-replaced allocas, see [plan_slots]) classify by
    their scalar instead of as object pointers: a small-int slot's only
    writers are the alloca's zero and whole-slot integer stores, so it
    lands in [Rint]; float slots land in [Rfloat]; I64 slots stay
    boxed ([Vint]-only by construction — the store re-boxes through
    [Mval.as_int], and the alloca's zero is [Vint 0], which is exactly
    what a zero-filled 8-byte load would box). *)
let classify (blocks_list : pblock array list) (entry : phicopy)
    (boxed_roots : int array list) (slots : (int, Irtype.scalar) Hashtbl.t)
    (nregs : int) : rclass array =
  let wi : writer list array = Array.make nregs [] in
  let wf : writer list array = Array.make nregs [] in
  let wp : writer list array = Array.make nregs [] in
  let add tbl r w = if r >= 0 && r < nregs then tbl.(r) <- w :: tbl.(r) in
  let fits_imm = function
    (* the value survives an int round trip, so re-boxing is exact *)
    | Mval.Vint v -> Int64.equal (Int64.of_int (Int64.to_int v)) v
    | Mval.Vfloat _ | Mval.Vptr _ -> false
  in
  let ik = function
    | Preg r -> Wdep r
    | Pimm v -> if fits_imm v then Wyes else Wno
    | Pfail _ -> Wno
  in
  let fk = function
    | Preg r -> Wdep r
    | Pimm (Mval.Vfloat _) -> Wyes
    | Pimm _ | Pfail _ -> Wno
  in
  let pk = function
    | Preg r -> Wdep r
    | Pimm (Mval.Vptr (Mobject.Pobj _)) -> Wyes
    | Pimm _ | Pfail _ -> Wno
  in
  let move r src =
    add wi r (ik src);
    add wf r (fk src);
    add wp r (pk src)
  in
  let boxed r =
    add wi r Wno;
    add wf r Wno;
    add wp r Wno
  in
  let int_res r =
    add wi r Wyes;
    add wf r Wno;
    add wp r Wno
  in
  let float_res r =
    add wi r Wno;
    add wf r Wyes;
    add wp r Wno
  in
  let copies = function
    | Pc_copy (dests, srcs) -> Array.iteri (fun i d -> move d srcs.(i)) dests
    | Pc_none | Pc_missing -> ()
  in
  let edge = function Edge (_, c) -> copies c | Edge_unknown _ -> () in
  let term = function
    | Pret _ | Punreachable -> ()
    | Pbr e -> edge e
    | Pcondbr (_, a, b) ->
      edge a;
      edge b
    | Pswitch (_, impl, d) ->
      edge d;
      (match impl with
      | Sw_linear (_, es) -> Array.iter edge es
      | Sw_table tbl -> Hashtbl.iter (fun _ e -> edge e) tbl)
  in
  let instr = function
    | Palloca (r, _, _) -> begin
      match Hashtbl.find_opt slots r with
      | None ->
        add wi r Wno;
        add wf r Wno;
        add wp r Wyes
      | Some s ->
        (* the alloca writes the slot's zero in the slot's class *)
        if small s then int_res r
        else if s = Irtype.F32 || s = Irtype.F64 then float_res r
        else boxed r
    end
    | Pload (r, s, _) ->
      if small s then int_res r
      else if s = Irtype.F32 || s = Irtype.F64 then float_res r
      else boxed r
    | Pstore (s, _, Preg rp) when Hashtbl.mem slots rp ->
      (* a whole-slot store writes the slot register in its class *)
      if small s then int_res rp
      else if s = Irtype.F32 || s = Irtype.F64 then float_res rp
      else boxed rp
    | Pstore _ | Psancheck | Ploc _ -> ()
    | Pgep (r, base, _) ->
      add wi r Wno;
      add wf r Wno;
      add wp r
        (match base with
        | Preg rb -> Wdep rb
        | Pimm (Mval.Vptr (Mobject.Pobj _)) -> Wyes
        | Pimm _ | Pfail _ -> Wno)
    | Pbinop (r, _, s, _, _, cls) ->
      if cls = Cfp then float_res r
      else if small s then int_res r
      else boxed r
    | Picmp (r, _, _, _, _) -> int_res r
    | Pfcmp (r, _, _, _) -> int_res r
    | Pcast (r, op, from, into, _) -> begin
      match op with
      | (Instr.Trunc | Instr.Sext | Instr.Zext) when small into -> int_res r
      | (Instr.Fptosi | Instr.Fptoui) when small into -> int_res r
      | Instr.Fptrunc | Instr.Fpext | Instr.Sitofp | Instr.Uitofp ->
        float_res r
      | Instr.Bitcast when Irtype.is_float_scalar from && into = Irtype.I32 ->
        int_res r
      | Instr.Bitcast
        when (not (Irtype.is_float_scalar from))
             && Irtype.is_float_scalar into ->
        float_res r
      | _ -> boxed r
    end
    | Pselect (r, _, a, b) ->
      move r a;
      move r b
    | Pcall (r, _, _, _) -> boxed r
  in
  List.iter
    (Array.iter (fun blk ->
         Array.iter instr blk.pb_instrs;
         term blk.pb_term))
    blocks_list;
  copies entry;
  List.iter (Array.iter boxed) boxed_roots;
  let solve (writers : writer list array) : bool array =
    let unboxed =
      Array.map
        (fun ws -> ws <> [] && not (List.exists (fun w -> w = Wno) ws))
        writers
    in
    let changed = ref true in
    while !changed do
      changed := false;
      for r = 0 to nregs - 1 do
        if
          unboxed.(r)
          && List.exists
               (function Wdep d -> not unboxed.(d) | Wyes | Wno -> false)
               writers.(r)
        then begin
          unboxed.(r) <- false;
          changed := true
        end
      done
    done;
    unboxed
  in
  let ui = solve wi and uf = solve wf and up = solve wp in
  Array.init nregs (fun r ->
      if ui.(r) then Rint
      else if uf.(r) then Rfloat
      else if up.(r) then Rptr
      else Rbox)

(* ------------------------------------------------------------------ *)
(* The compiler                                                        *)
(* ------------------------------------------------------------------ *)

(* Every compiled instruction opens with the same inlined step-charge
   sequence — the same writes, in the same order, with the same raise
   point as [Interp.charge]:

     st.steps <- st.steps + 1;
     ctrs.c_X <- ctrs.c_X + 1;          (* instance's hotness counter *)
     if st.steps > limit then raise Step_limit_exceeded;
     if obs then os.os_X <- os.os_X + 1;

   It is spelled out at each site rather than shared through a closure
   record: without flambda a `charge st` call is an indirect call per
   executed operation, which at ~3M operations per benchmark run is a
   measurable share of tier-2 time.  [ctrs] is the instance's counter
   record (captured at compile time — a compiled body only ever runs in
   the state that compiled it), and the opstat bump comes after the
   limit check so a timeout leaves the stats exactly as the interpreter
   would. *)

(** How an instance's [Pret] is compiled: a real function return, or —
    for an inlined callee — the interpreter's post-call protocol (depth
    decrement, result write into the caller's register) followed by the
    call site's continuation. *)
type ret_mode = Ret_fun | Ret_inline of int * cont

let unset : cont = fun _ _ -> failwith "closcomp: block not compiled"

let compile (st0 : state) (pf : pfunc) : compiled =
  let obs = st0.obs in
  let os = st0.opstats in
  let limit = st0.step_limit in
  let heap = st0.heap in
  let prof = st0.prof in
  if Array.length pf.pf_blocks = 0 then
    {
      cb_entry =
        (fun _st _fr ->
          (* same failure as the interpreter touching [pf_blocks.(0)] *)
          ignore pf.pf_blocks.(0);
          assert false);
      cb_osr = None;
      cb_frame = None;
      cb_release = None;
    }
  else begin
    let sites, nregs = plan_inlines st0 pf in
    let blocks_list =
      pf.pf_blocks :: Hashtbl.fold (fun _ s acc -> s.is_blocks :: acc) sites []
    in
    let boxed_roots =
      pf.pf_param_regs
      :: Hashtbl.fold (fun _ s acc -> s.is_params :: acc) sites []
    in
    let uses = reg_use_counts_of blocks_list pf.pf_entry_copies nregs in
    (* Uninitialized-read detection watches the real init bitmap, so
       allocas must stay real objects when it is on. *)
    let slots =
      if st0.detect_uninit then Hashtbl.create 0
      else plan_slots blocks_list pf.pf_entry_copies boxed_roots nregs
    in
    let cls = classify blocks_list pf.pf_entry_copies boxed_roots slots nregs in
    let empty_sites : (int * int, inline_site) Hashtbl.t = Hashtbl.create 1 in

    (* --- class-aware operand access (shared by all instances) --- *)

    (* Boxed view of any operand; unboxed registers re-box on read
       (their unboxed slot holds exactly what the interpreter's box
       would). *)
    let getter (v : pval) : frame -> Mval.t =
      match v with
      | Preg r -> begin
        match cls.(r) with
        | Rint ->
          fun fr -> Mval.Vint (Int64.of_int (Array.unsafe_get fr.fr_iregs r))
        | Rfloat -> fun fr -> Mval.Vfloat (Array.unsafe_get fr.fr_fregs r)
        | Rptr ->
          fun fr ->
            Mval.Vptr
              (Mobject.Pobj
                 {
                   Mobject.obj = Array.unsafe_get fr.fr_pobj r;
                   moff = Array.unsafe_get fr.fr_poff r;
                 })
        | Rbox -> fun fr -> Array.unsafe_get fr.fr_regs r
      end
      | Pimm v -> fun _ -> v
      | Pfail msg -> fun _ -> failwith msg
    in
    (* Native-int view, for operands of small-scalar operations.  The
       [Int64.to_int] truncation of a boxed operand is exact for every
       well-typed small operand (normalized <=32-bit values), and for
       any other int64 every consumer below re-masks/re-normalizes to
       <=32 bits, which only depends on the low bits [to_int]
       preserves.  Float/pointer-classified operands fall through the
       boxed view so [Mval.as_int] raises or cookies exactly like the
       interpreter. *)
    let iget (v : pval) : frame -> int =
      match v with
      | Preg r when cls.(r) = Rint ->
        fun fr -> Array.unsafe_get fr.fr_iregs r
      | Preg r when cls.(r) = Rbox ->
        fun fr -> Int64.to_int (Mval.as_int (Array.unsafe_get fr.fr_regs r))
      | Pimm (Mval.Vint v) ->
        let c = Int64.to_int v in
        fun _ -> c
      | v ->
        let g = getter v in
        fun fr -> Int64.to_int (Mval.as_int (g fr))
    in
    (* Result writers for int-producing operations (classification
       guarantees such destinations are [Rint] or [Rbox]). *)
    let iset (r : int) : frame -> int -> unit =
      if cls.(r) = Rint then fun fr v -> Array.unsafe_set fr.fr_iregs r v
      else fun fr v -> Array.unsafe_set fr.fr_regs r (Mval.Vint (Int64.of_int v))
    in
    (* Native-float view; non-float operands fall through [Mval.as_float]
       (int-to-float widening, invalid_arg on pointers) like the
       interpreter. *)
    let fget (v : pval) : frame -> float =
      match v with
      | Preg r when cls.(r) = Rfloat ->
        fun fr -> Array.unsafe_get fr.fr_fregs r
      | Preg r when cls.(r) = Rint ->
        fun fr -> float_of_int (Array.unsafe_get fr.fr_iregs r)
      | Preg r when cls.(r) = Rbox ->
        fun fr -> Mval.as_float (Array.unsafe_get fr.fr_regs r)
      | Pimm (Mval.Vfloat f) -> fun _ -> f
      | Pimm (Mval.Vint v) ->
        let c = Int64.to_float v in
        fun _ -> c
      | v ->
        let g = getter v in
        fun fr -> Mval.as_float (g fr)
    in
    (* Result writers for float-producing operations (destinations are
       [Rfloat] or [Rbox] by classification). *)
    let fset (r : int) : frame -> float -> unit =
      if cls.(r) = Rfloat then fun fr v -> Array.unsafe_set fr.fr_fregs r v
      else fun fr v -> Array.unsafe_set fr.fr_regs r (Mval.Vfloat v)
    in
    (* Split views of a proven object-pointer operand.  Precondition
       (enforced by classification): the operand is an [Rptr] register
       or an object-pointer immediate — anything else cannot reach an
       [Rptr] destination. *)
    let pget_obj (v : pval) : frame -> Mobject.t =
      match v with
      | Preg r when cls.(r) = Rptr -> fun fr -> Array.unsafe_get fr.fr_pobj r
      | Pimm (Mval.Vptr (Mobject.Pobj a)) ->
        let o = a.Mobject.obj in
        fun _ -> o
      | _ -> assert false
    in
    let pget_off (v : pval) : frame -> int =
      match v with
      | Preg r when cls.(r) = Rptr -> fun fr -> Array.unsafe_get fr.fr_poff r
      | Pimm (Mval.Vptr (Mobject.Pobj a)) ->
        let off = a.Mobject.moff in
        fun _ -> off
      | _ -> assert false
    in

    (* --- narrow memory access fast paths ---

       The inlined path performs the interpreter's checks on the managed
       object in the interpreter's order — dereference, memento
       observation, liveness, bounds, the uninitialized-read map — and
       bails to the real [Mobject] accessors the moment any of them
       would take an interesting branch, so every error is raised by the
       exact same code with the exact same message. *)
    let iload_fast (s : Irtype.scalar) : Bytes.t -> int -> int =
      match s with
      | Irtype.I1 -> fun b off -> Char.code (Bytes.get b off) land 1
      | Irtype.I8 -> fun b off -> (Char.code (Bytes.get b off) lsl 55) asr 55
      | Irtype.I16 -> fun b off -> (Bytes.get_uint16_le b off lsl 47) asr 47
      | Irtype.I32 -> fun b off -> Int32.to_int (Bytes.get_int32_le b off)
      | _ -> invalid_arg "Closcomp.iload_fast: not a small scalar"
    in
    let istore_fast (s : Irtype.scalar) : Bytes.t -> int -> int -> unit =
      match s with
      | Irtype.I1 | Irtype.I8 ->
        fun b off v -> Bytes.set b off (Char.chr (v land 0xFF))
      | Irtype.I16 -> fun b off v -> Bytes.set_uint16_le b off (v land 0xFFFF)
      | Irtype.I32 -> fun b off v -> Bytes.set_int32_le b off (Int32.of_int v)
      | _ -> invalid_arg "Closcomp.istore_fast: not a small scalar"
    in
    (* Raw-bits float access: [Mobject.load_float]/[store_float] are
       [load_int]/[store_int] plus a bits conversion, so the fast path
       is the byte access and the conversion fused. *)
    let fload_fast (s : Irtype.scalar) : Bytes.t -> int -> float =
      if s = Irtype.F32 then fun b off ->
        Int32.float_of_bits (Bytes.get_int32_le b off)
      else fun b off -> Int64.float_of_bits (Bytes.get_int64_le b off)
    in
    let fstore_fast (s : Irtype.scalar) : Bytes.t -> int -> float -> unit =
      if s = Irtype.F32 then fun b off v ->
        Bytes.set_int32_le b off (Int32.bits_of_float v)
      else fun b off v -> Bytes.set_int64_le b off (Int64.bits_of_float v)
    in

    (* --- one instance: the caller, or an inlined callee --- *)
    let rec instance (ipf : pfunc) (iblocks : pblock array)
        (isites : (int * int, inline_site) Hashtbl.t) (ret : ret_mode)
        (entry_copies : phicopy) : cont * cont ref array =
      let ctx = ipf.pf_context in
      let ctrs = ipf.pf_counters in
      let nblocks = Array.length iblocks in
      let cells = Array.init nblocks (fun _ -> ref unset) in

      (* --- edges: phi parallel copy, then a direct-threaded jump --- *)
      let compile_jump (copies : phicopy) (jump : cont ref) : cont =
        match copies with
        | Pc_none -> fun st fr -> !jump st fr
        | Pc_missing ->
          fun _ _ -> failwith "interp: phi has no incoming edge for predecessor"
        | Pc_copy (dests, srcs) ->
          let n = Array.length dests in
          if n = 1 then begin
            let d = dests.(0) in
            match cls.(d) with
            | Rint ->
              let ig = iget srcs.(0) in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_phi_copy <- os.os_phi_copy + 1;
                Array.unsafe_set fr.fr_iregs d (ig fr);
                !jump st fr
            | Rfloat ->
              let fg = fget srcs.(0) in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_phi_copy <- os.os_phi_copy + 1;
                Array.unsafe_set fr.fr_fregs d (fg fr);
                !jump st fr
            | Rptr ->
              let go = pget_obj srcs.(0) and gf = pget_off srcs.(0) in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_phi_copy <- os.os_phi_copy + 1;
                Array.unsafe_set fr.fr_pobj d (go fr);
                Array.unsafe_set fr.fr_poff d (gf fr);
                !jump st fr
            | Rbox -> begin
              match srcs.(0) with
              | Preg rs when cls.(rs) = Rbox ->
                fun st fr ->
                  st.steps <- st.steps + 1;
                  ctrs.c_ops <- ctrs.c_ops + 1;
                  if st.steps > limit then raise Step_limit_exceeded;
                  if obs then os.os_phi_copy <- os.os_phi_copy + 1;
                  fr.fr_regs.(d) <- fr.fr_regs.(rs);
                  !jump st fr
              | src ->
                let g = getter src in
                fun st fr ->
                  st.steps <- st.steps + 1;
                  ctrs.c_ops <- ctrs.c_ops + 1;
                  if st.steps > limit then raise Step_limit_exceeded;
                  if obs then os.os_phi_copy <- os.os_phi_copy + 1;
                  fr.fr_regs.(d) <- g fr;
                  !jump st fr
            end
          end
          else begin
            (* parallel copy with a mixed register file: each class
               moves through its own scratch array; all sources are
               read before any write, as in the interpreter *)
            let kinds = Array.map (fun d -> cls.(d)) dests in
            let igs =
              Array.mapi
                (fun i s -> if kinds.(i) = Rint then iget s else fun _ -> 0)
                srcs
            in
            let fgs =
              Array.mapi
                (fun i s -> if kinds.(i) = Rfloat then fget s else fun _ -> 0.0)
                srcs
            in
            let pos =
              Array.mapi
                (fun i s ->
                  if kinds.(i) = Rptr then pget_obj s
                  else fun _ -> Mobject.dummy)
                srcs
            in
            let poffs =
              Array.mapi
                (fun i s -> if kinds.(i) = Rptr then pget_off s else fun _ -> 0)
                srcs
            in
            let gs =
              Array.mapi
                (fun i s ->
                  if kinds.(i) = Rbox then getter s else fun _ -> Mval.zero)
                srcs
            in
            fun st fr ->
              let tmpi = Array.make n 0 in
              let tmpf = Array.make n 0.0 in
              let tmpo = Array.make n Mobject.dummy in
              let tmpoff = Array.make n 0 in
              let tmpv = Array.make n Mval.zero in
              for i = 0 to n - 1 do
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                match kinds.(i) with
                | Rint -> tmpi.(i) <- igs.(i) fr
                | Rfloat -> tmpf.(i) <- fgs.(i) fr
                | Rptr ->
                  tmpo.(i) <- pos.(i) fr;
                  tmpoff.(i) <- poffs.(i) fr
                | Rbox -> tmpv.(i) <- gs.(i) fr
              done;
              for i = 0 to n - 1 do
                match kinds.(i) with
                | Rint -> Array.unsafe_set fr.fr_iregs dests.(i) tmpi.(i)
                | Rfloat -> Array.unsafe_set fr.fr_fregs dests.(i) tmpf.(i)
                | Rptr ->
                  Array.unsafe_set fr.fr_pobj dests.(i) tmpo.(i);
                  Array.unsafe_set fr.fr_poff dests.(i) tmpoff.(i)
                | Rbox -> fr.fr_regs.(dests.(i)) <- tmpv.(i)
              done;
              if obs then os.os_phi_copy <- os.os_phi_copy + n;
              !jump st fr
          end
      in
      let compile_edge (e : pedge) : cont =
        match e with
        | Edge (idx, copies) -> compile_jump copies cells.(idx)
        | Edge_unknown l ->
          fun _ _ -> failwith ("interp: jump to unknown block " ^ l)
      in
      (* A copy-free edge is just its target cell: branch closures inline
         the [!cell] dereference instead of hopping through a wrapper
         closure. *)
      let edge_plain (e : pedge) : cont ref option =
        match e with Edge (idx, Pc_none) -> Some cells.(idx) | _ -> None
      in

      (* --- terminators --- *)
      (* [Pret] under [Ret_inline] replays the interpreter's post-call
         order exactly: terminator charge, result read, depth decrement
         (the frame pop has no observable effect — no frame was pushed),
         then the call's result write and continuation. *)
      let compile_ret (v : pval option) : cont =
        match (ret, v) with
        | Ret_fun, Some v ->
          let g = getter v in
          fun st fr ->
            st.steps <- st.steps + 1;
            ctrs.c_ops <- ctrs.c_ops + 1;
            if st.steps > limit then raise Step_limit_exceeded;
            if obs then os.os_term <- os.os_term + 1;
            Some (g fr)
        | Ret_fun, None ->
          fun st _fr ->
            st.steps <- st.steps + 1;
            ctrs.c_ops <- ctrs.c_ops + 1;
            if st.steps > limit then raise Step_limit_exceeded;
            if obs then os.os_term <- os.os_term + 1;
            None
        | Ret_inline (rres, next), Some v -> (
          (* Guest-profiler leave: the ret charge lands before [leave]
             flushes, so it is attributed to the callee exactly as in
             the interpreter (whose next flush after the ret charge is
             the [Profile.leave] in [call_function]).  [prof] is fixed
             at compile time, so the unprofiled closures keep their
             exact shape — no per-return branch. *)
          let g = getter v in
          match prof with
          | None ->
            if rres >= 0 then fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              let res = g fr in
              st.depth <- st.depth - 1;
              fr.fr_regs.(rres) <- res;
              next st fr
            else fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              ignore (g fr);
              st.depth <- st.depth - 1;
              next st fr
          | Some p ->
            if rres >= 0 then fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              Profile.leave p ~steps:st.steps;
              let res = g fr in
              st.depth <- st.depth - 1;
              fr.fr_regs.(rres) <- res;
              next st fr
            else fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              Profile.leave p ~steps:st.steps;
              ignore (g fr);
              st.depth <- st.depth - 1;
              next st fr)
        | Ret_inline (rres, next), None -> (
          match prof with
          | None ->
            if rres >= 0 then fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              st.depth <- st.depth - 1;
              fr.fr_regs.(rres) <- Mval.zero;
              next st fr
            else fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              st.depth <- st.depth - 1;
              next st fr
          | Some p ->
            if rres >= 0 then fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              Profile.leave p ~steps:st.steps;
              st.depth <- st.depth - 1;
              fr.fr_regs.(rres) <- Mval.zero;
              next st fr
            else fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              Profile.leave p ~steps:st.steps;
              st.depth <- st.depth - 1;
              next st fr)
      in
      let compile_term (t : pterm) : cont =
        match t with
        | Pret v -> compile_ret v
        | Pbr e -> begin
          match edge_plain e with
          | Some cell ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              !cell st fr
          | None ->
            let k = compile_edge e in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              k st fr
        end
        | Pcondbr (c, a, b) -> begin
          match (c, edge_plain a, edge_plain b) with
          | Preg rc, Some ca, Some cb when cls.(rc) = Rint ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              if Array.unsafe_get fr.fr_iregs rc = 0 then !cb st fr
              else !ca st fr
          | Preg rc, Some ca, Some cb when cls.(rc) = Rbox ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              if Int64.equal (Mval.as_int fr.fr_regs.(rc)) 0L then !cb st fr
              else !ca st fr
          | c, _, _ ->
            let ka = compile_edge a and kb = compile_edge b in
            (match c with
            | Preg rc when cls.(rc) = Rint ->
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_term <- os.os_term + 1;
                if Array.unsafe_get fr.fr_iregs rc = 0 then kb st fr
                else ka st fr
            | Preg rc when cls.(rc) = Rbox ->
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_term <- os.os_term + 1;
                if Int64.equal (Mval.as_int fr.fr_regs.(rc)) 0L then kb st fr
                else ka st fr
            | c ->
              let g = getter c in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_term <- os.os_term + 1;
                if Int64.equal (Mval.as_int (g fr)) 0L then kb st fr
                else ka st fr)
        end
        | Pswitch (v, impl, default) ->
          let gv = getter v in
          let kd = compile_edge default in
          (match impl with
          | Sw_linear (keys, edges) ->
            let ks = Array.map compile_edge edges in
            let nk = Array.length keys in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              let x = Mval.as_int (gv fr) in
              let rec find i =
                if i >= nk then kd
                else if Int64.equal keys.(i) x then ks.(i)
                else find (i + 1)
              in
              (find 0) st fr
          | Sw_table tbl ->
            let ctbl = Hashtbl.create (2 * Hashtbl.length tbl) in
            Hashtbl.iter (fun k e -> Hashtbl.replace ctbl k (compile_edge e)) tbl;
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_term <- os.os_term + 1;
              let x = Mval.as_int (gv fr) in
              (match Hashtbl.find_opt ctbl x with Some k -> k | None -> kd)
                st fr)
        | Punreachable ->
          fun st _fr ->
            st.steps <- st.steps + 1;
            ctrs.c_ops <- ctrs.c_ops + 1;
            if st.steps > limit then raise Step_limit_exceeded;
            if obs then os.os_term <- os.os_term + 1;
            Merror.raise_error
              (Merror.Type_violation "reached an unreachable instruction")
              ctx
      in
      (* --- instructions, chained through their continuation --- *)
      let compile_instr (key : int * int) (i : pinstr) (next : cont) : cont =
        match i with
        (* --- scalar-replaced allocas (virtual stack slots) ---
           [plan_slots] proved the object unobservable, so the slot
           lives in a register of its scalar's class and every access
           replays the exact memory round trip.  The alloca still
           consumes an allocation id (the ids of later allocations are
           observable through cookies) and re-zeroes the slot — for an
           I64 slot the boxed zero [Vint 0] is exactly what a load of
           the fresh object's zero bytes would box. *)
        | Palloca (r, _, _) when Hashtbl.mem slots r -> begin
          match cls.(r) with
          | Rint ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_alloca <- os.os_alloca + 1;
              ignore (Mobject.fresh_id ());
              Array.unsafe_set fr.fr_iregs r 0;
              next st fr
          | Rfloat ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_alloca <- os.os_alloca + 1;
              ignore (Mobject.fresh_id ());
              Array.unsafe_set fr.fr_fregs r 0.0;
              next st fr
          | Rbox | Rptr ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_alloca <- os.os_alloca + 1;
              ignore (Mobject.fresh_id ());
              Array.unsafe_set fr.fr_regs r Mval.zero;
              next st fr
        end
        | Pload (r, _, Preg rp) when Hashtbl.mem slots rp -> begin
          (* whole-slot load: forward the slot register (already the
             exact value a memory load would produce).  These are the
             hottest operations in alloca-based code, so each shape is
             a fully inlined register move — no accessor closures. *)
          match cls.(rp) with
          | Rint when cls.(r) = Rint ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let ir = fr.fr_iregs in
              Array.unsafe_set ir r (Array.unsafe_get ir rp);
              next st fr
          | Rint ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              fr.fr_regs.(r) <-
                Mval.Vint (Int64.of_int (Array.unsafe_get fr.fr_iregs rp));
              next st fr
          | Rfloat when cls.(r) = Rfloat ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let fl = fr.fr_fregs in
              Array.unsafe_set fl r (Array.unsafe_get fl rp);
              next st fr
          | Rfloat ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              fr.fr_regs.(r) <-
                Mval.Vfloat (Array.unsafe_get fr.fr_fregs rp);
              next st fr
          | Rbox | Rptr ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              Array.unsafe_set fr.fr_regs r (Array.unsafe_get fr.fr_regs rp);
              next st fr
        end
        | Pstore (s, v, Preg rp) when Hashtbl.mem slots rp -> begin
          (* whole-slot store: normalize exactly like the memory round
             trip would — small ints sign-extend their stored low bits,
             F32 rounds through its bit pattern, I64 re-boxes through
             [Mval.as_int] (same pointer-cookie side effect as the
             interpreter's store). *)
          match cls.(rp) with
          | Rint -> begin
            (* specialize the hot shapes: register and immediate sources
               store straight-line, with the sign-extension shifts of
               [inorm] inlined (I1 masks instead) *)
            let sh = if s = Irtype.I1 then 0 else 63 - ibits s in
            match v with
            | Preg rv when cls.(rv) = Rint && s <> Irtype.I1 ->
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_mem <- ctrs.c_mem + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_store <- os.os_store + 1;
                let x = Array.unsafe_get fr.fr_iregs rv in
                Array.unsafe_set fr.fr_iregs rp ((x lsl sh) asr sh);
                next st fr
            | Pimm (Mval.Vint imm) ->
              let c = inorm s (Int64.to_int imm) in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_mem <- ctrs.c_mem + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_store <- os.os_store + 1;
                Array.unsafe_set fr.fr_iregs rp c;
                next st fr
            | _ ->
              let g = iget v in
              let nrm = inorm s in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_mem <- ctrs.c_mem + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_store <- os.os_store + 1;
                Array.unsafe_set fr.fr_iregs rp (nrm (g fr));
                next st fr
          end
          | Rfloat ->
            let g = fget v in
            if s = Irtype.F32 then
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_mem <- ctrs.c_mem + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_store <- os.os_store + 1;
                Array.unsafe_set fr.fr_fregs rp (Irtype.round_to_f32 (g fr));
                next st fr
            else
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_mem <- ctrs.c_mem + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_store <- os.os_store + 1;
                Array.unsafe_set fr.fr_fregs rp (g fr);
                next st fr
          | Rbox | Rptr ->
            let g = getter v in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_store <- os.os_store + 1;
              Array.unsafe_set fr.fr_regs rp (Mval.Vint (Mval.as_int (g fr)));
              next st fr
        end
        | Palloca (r, mty, size) -> begin
          match cls.(r) with
          | Rptr ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_alloca <- os.os_alloca + 1;
              let obj = Mobject.alloc ~storage:Merror.Stack ~mty size in
              Array.unsafe_set fr.fr_pobj r obj;
              Array.unsafe_set fr.fr_poff r 0;
              next st fr
          | _ ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_alloca <- os.os_alloca + 1;
              let obj = Mobject.alloc ~storage:Merror.Stack ~mty size in
              fr.fr_regs.(r) <- Mval.Vptr (Mobject.Pobj { Mobject.obj; moff = 0 });
              next st fr
        end
        | Pload (r, s, p) when small s ->
          let size = Irtype.scalar_size s in
          let fast = iload_fast s in
          let norm = inorm s in
          let observe = s <> Irtype.I8 in
          let set = iset r in
          (* the hottest operation in alloca-based code (every read of a
             local): for the dominant register-pointer/unboxed-result
             shapes everything is inlined — the register reads, the
             pointer access, the byte load and the result write *)
          (match p with
          | Preg rp when cls.(rp) = Rptr && cls.(r) = Rint ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let obj = Array.unsafe_get fr.fr_pobj rp in
              let off = Array.unsafe_get fr.fr_poff rp in
              if observe then (
                match obj.Mobject.storage with
                | Merror.Heap -> Mheap.observe heap obj s
                | _ -> ());
              let v =
                match (obj.Mobject.data, obj.Mobject.init_map) with
                | Some b, None
                  when off >= 0 && off + size <= obj.Mobject.byte_size ->
                  fast b off
                | _ ->
                  norm
                    (Int64.to_int
                       (Mobject.load_int { Mobject.obj; moff = off } ~size ctx))
              in
              Array.unsafe_set fr.fr_iregs r v;
              next st fr
          | Preg rp when cls.(rp) = Rptr ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let obj = Array.unsafe_get fr.fr_pobj rp in
              let off = Array.unsafe_get fr.fr_poff rp in
              if observe then (
                match obj.Mobject.storage with
                | Merror.Heap -> Mheap.observe heap obj s
                | _ -> ());
              let v =
                match (obj.Mobject.data, obj.Mobject.init_map) with
                | Some b, None
                  when off >= 0 && off + size <= obj.Mobject.byte_size ->
                  fast b off
                | _ ->
                  norm
                    (Int64.to_int
                       (Mobject.load_int { Mobject.obj; moff = off } ~size ctx))
              in
              set fr v;
              next st fr
          | Preg rp when cls.(rp) = Rbox && cls.(r) = Rint ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let a =
                match Array.unsafe_get fr.fr_regs rp with
                | Mval.Vptr (Mobject.Pobj a) -> a
                | pm -> deref_c ctx pm
              in
              let obj = a.Mobject.obj in
              if observe then (
                match obj.Mobject.storage with
                | Merror.Heap -> Mheap.observe heap obj s
                | _ -> ());
              let off = a.Mobject.moff in
              let v =
                match (obj.Mobject.data, obj.Mobject.init_map) with
                | Some b, None
                  when off >= 0 && off + size <= obj.Mobject.byte_size ->
                  fast b off
                | _ -> norm (Int64.to_int (Mobject.load_int a ~size ctx))
              in
              Array.unsafe_set fr.fr_iregs r v;
              next st fr
          | p ->
            let g = getter p in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let a =
                match g fr with
                | Mval.Vptr (Mobject.Pobj a) -> a
                | pm -> deref_c ctx pm
              in
              let obj = a.Mobject.obj in
              if observe then (
                match obj.Mobject.storage with
                | Merror.Heap -> Mheap.observe heap obj s
                | _ -> ());
              let off = a.Mobject.moff in
              let v =
                match (obj.Mobject.data, obj.Mobject.init_map) with
                | Some b, None
                  when off >= 0 && off + size <= obj.Mobject.byte_size ->
                  fast b off
                | _ -> norm (Int64.to_int (Mobject.load_int a ~size ctx))
              in
              set fr v;
              next st fr)
        | Pload (r, s, p) when (s = Irtype.F32 || s = Irtype.F64) && cls.(r) = Rfloat ->
          let size = Irtype.scalar_size s in
          let fast = fload_fast s in
          (* float loads always observe heap mementos (s <> I8) *)
          (match p with
          | Preg rp when cls.(rp) = Rptr ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let obj = Array.unsafe_get fr.fr_pobj rp in
              let off = Array.unsafe_get fr.fr_poff rp in
              (match obj.Mobject.storage with
              | Merror.Heap -> Mheap.observe heap obj s
              | _ -> ());
              let v =
                match (obj.Mobject.data, obj.Mobject.init_map) with
                | Some b, None
                  when off >= 0 && off + size <= obj.Mobject.byte_size ->
                  fast b off
                | _ -> Mobject.load_float { Mobject.obj; moff = off } ~size ctx
              in
              Array.unsafe_set fr.fr_fregs r v;
              next st fr
          | p ->
            let g = getter p in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let a =
                match g fr with
                | Mval.Vptr (Mobject.Pobj a) -> a
                | pm -> deref_c ctx pm
              in
              let obj = a.Mobject.obj in
              (match obj.Mobject.storage with
              | Merror.Heap -> Mheap.observe heap obj s
              | _ -> ());
              let off = a.Mobject.moff in
              let v =
                match (obj.Mobject.data, obj.Mobject.init_map) with
                | Some b, None
                  when off >= 0 && off + size <= obj.Mobject.byte_size ->
                  fast b off
                | _ -> Mobject.load_float a ~size ctx
              in
              Array.unsafe_set fr.fr_fregs r v;
              next st fr)
        | Pload (r, s, p) ->
          let size = Irtype.scalar_size s in
          let load : Mobject.addr -> Mval.t =
            match s with
            | Irtype.Ptr -> fun a -> Mval.Vptr (Mobject.load_ptr a ctx)
            | Irtype.F32 | Irtype.F64 ->
              fun a -> Mval.Vfloat (Mobject.load_float a ~size ctx)
            | _ ->
              (* I64: bounds+liveness inline, [Mobject] on any slow branch *)
              fun a ->
                let obj = a.Mobject.obj in
                let off = a.Mobject.moff in
                (match (obj.Mobject.data, obj.Mobject.init_map) with
                | Some b, None when off >= 0 && off + 8 <= obj.Mobject.byte_size
                  ->
                  Mval.Vint (Bytes.get_int64_le b off)
                | _ -> Mval.Vint (Mobject.load_int a ~size:8 ctx))
          in
          (* allocation-memento observation applies to non-i8 heap
             accesses only; the predicate on the scalar is compile-time *)
          (match p with
          | Preg rp when cls.(rp) = Rptr ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let a =
                {
                  Mobject.obj = Array.unsafe_get fr.fr_pobj rp;
                  moff = Array.unsafe_get fr.fr_poff rp;
                }
              in
              (match a.Mobject.obj.Mobject.storage with
              | Merror.Heap -> Mheap.observe heap a.Mobject.obj s
              | _ -> ());
              fr.fr_regs.(r) <- load a;
              next st fr
          | Preg rp when cls.(rp) = Rbox ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let a =
                match Array.unsafe_get fr.fr_regs rp with
                | Mval.Vptr (Mobject.Pobj a) -> a
                | pm -> deref_c ctx pm
              in
              (match a.Mobject.obj.Mobject.storage with
              | Merror.Heap -> Mheap.observe heap a.Mobject.obj s
              | _ -> ());
              fr.fr_regs.(r) <- load a;
              next st fr
          | p ->
            let g = getter p in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_load <- os.os_load + 1;
              let a =
                match g fr with
                | Mval.Vptr (Mobject.Pobj a) -> a
                | pm -> deref_c ctx pm
              in
              (match a.Mobject.obj.Mobject.storage with
              | Merror.Heap -> Mheap.observe heap a.Mobject.obj s
              | _ -> ());
              fr.fr_regs.(r) <- load a;
              next st fr)
        | Pstore (s, v, p) when small s ->
          let gv = iget v in
          let size = Irtype.scalar_size s in
          let fast = istore_fast s in
          let observe = s <> Irtype.I8 in
          (* operand order matches the interpreter — pointer, then value
             — and a plain register read cannot raise, so inlining the
             pointer read keeps every raise point in place *)
          (match p with
          | Preg rp when cls.(rp) = Rptr ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_store <- os.os_store + 1;
              let obj = Array.unsafe_get fr.fr_pobj rp in
              let off = Array.unsafe_get fr.fr_poff rp in
              let vv = gv fr in
              if observe then (
                match obj.Mobject.storage with
                | Merror.Heap -> Mheap.observe heap obj s
                | _ -> ());
              (match (obj.Mobject.data, obj.Mobject.init_map) with
              | Some b, None
                when off >= 0
                     && off + size <= obj.Mobject.byte_size
                     && obj.Mobject.ptr_slots = None ->
                fast b off vv
              | _ ->
                Mobject.store_int { Mobject.obj; moff = off } ~size
                  (Int64.of_int vv) ctx);
              next st fr
          | Preg rp when cls.(rp) = Rbox ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_store <- os.os_store + 1;
              let pm = Array.unsafe_get fr.fr_regs rp in
              let vv = gv fr in
              let a =
                match pm with
                | Mval.Vptr (Mobject.Pobj a) -> a
                | pm -> deref_c ctx pm
              in
              let obj = a.Mobject.obj in
              if observe then (
                match obj.Mobject.storage with
                | Merror.Heap -> Mheap.observe heap obj s
                | _ -> ());
              let off = a.Mobject.moff in
              (match (obj.Mobject.data, obj.Mobject.init_map) with
              | Some b, None
                when off >= 0
                     && off + size <= obj.Mobject.byte_size
                     && obj.Mobject.ptr_slots = None ->
                fast b off vv
              | _ -> Mobject.store_int a ~size (Int64.of_int vv) ctx);
              next st fr
          | p ->
            let gp = getter p in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_store <- os.os_store + 1;
              let pp = gp fr in
              let vv = gv fr in
              let a =
                match pp with
                | Mval.Vptr (Mobject.Pobj a) -> a
                | pm -> deref_c ctx pm
              in
              let obj = a.Mobject.obj in
              if observe then (
                match obj.Mobject.storage with
                | Merror.Heap -> Mheap.observe heap obj s
                | _ -> ());
              let off = a.Mobject.moff in
              (match (obj.Mobject.data, obj.Mobject.init_map) with
              | Some b, None
                when off >= 0
                     && off + size <= obj.Mobject.byte_size
                     && obj.Mobject.ptr_slots = None ->
                fast b off vv
              | _ -> Mobject.store_int a ~size (Int64.of_int vv) ctx);
              next st fr)
        | Pstore (s, v, p) when s = Irtype.F32 || s = Irtype.F64 ->
          let gv = fget v in
          let size = Irtype.scalar_size s in
          let fast = fstore_fast s in
          (* float stores always observe heap mementos (s <> I8) *)
          (match p with
          | Preg rp when cls.(rp) = Rptr ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_store <- os.os_store + 1;
              let obj = Array.unsafe_get fr.fr_pobj rp in
              let off = Array.unsafe_get fr.fr_poff rp in
              let vv = gv fr in
              (match obj.Mobject.storage with
              | Merror.Heap -> Mheap.observe heap obj s
              | _ -> ());
              (match (obj.Mobject.data, obj.Mobject.init_map) with
              | Some b, None
                when off >= 0
                     && off + size <= obj.Mobject.byte_size
                     && obj.Mobject.ptr_slots = None ->
                fast b off vv
              | _ ->
                Mobject.store_float { Mobject.obj; moff = off } ~size vv ctx);
              next st fr
          | p ->
            let gp = getter p in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_mem <- ctrs.c_mem + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_store <- os.os_store + 1;
              let pp = gp fr in
              let vv = gv fr in
              let a =
                match pp with
                | Mval.Vptr (Mobject.Pobj a) -> a
                | pm -> deref_c ctx pm
              in
              let obj = a.Mobject.obj in
              (match obj.Mobject.storage with
              | Merror.Heap -> Mheap.observe heap obj s
              | _ -> ());
              let off = a.Mobject.moff in
              (match (obj.Mobject.data, obj.Mobject.init_map) with
              | Some b, None
                when off >= 0
                     && off + size <= obj.Mobject.byte_size
                     && obj.Mobject.ptr_slots = None ->
                fast b off vv
              | _ -> Mobject.store_float a ~size vv ctx);
              next st fr)
        | Pstore (s, v, p) ->
          let gv = getter v and gp = getter p in
          let size = Irtype.scalar_size s in
          let store : Mobject.addr -> Mval.t -> unit =
            match s with
            | Irtype.Ptr -> fun a x -> Mobject.store_ptr a (Mval.as_ptr ctx x) ctx
            | _ -> fun a x -> Mobject.store_int a ~size (Mval.as_int x) ctx
          in
          fun st fr ->
            st.steps <- st.steps + 1;
            ctrs.c_mem <- ctrs.c_mem + 1;
            if st.steps > limit then raise Step_limit_exceeded;
            if obs then os.os_store <- os.os_store + 1;
            let pp = gp fr in
            let vv = gv fr in
            let a =
              match pp with
              | Mval.Vptr (Mobject.Pobj a) -> a
              | pm -> deref_c ctx pm
            in
            (match a.Mobject.obj.Mobject.storage with
            | Merror.Heap -> Mheap.observe heap a.Mobject.obj s
            | _ -> ());
            store a vv;
            next st fr
        | Pgep (r, base, g) when cls.(r) = Rptr ->
          (* classification proved the base an object pointer, so the
             pointer-shape dispatch of [exec_gep] vanishes: the result
             is the base's pointee with an adjusted offset *)
          let go = pget_obj base and gf = pget_off base in
          let static = g.pg_static in
          (match g.pg_dyn with
          | [||] ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_gep <- os.os_gep + 1;
              Array.unsafe_set fr.fr_pobj r (go fr);
              Array.unsafe_set fr.fr_poff r (gf fr + static);
              next st fr
          | [| (iv, stride) |] ->
            let gi = iget iv in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_gep <- os.os_gep + 1;
              let obj = go fr in
              let off = gf fr + static + (gi fr * stride) in
              Array.unsafe_set fr.fr_pobj r obj;
              Array.unsafe_set fr.fr_poff r off;
              next st fr
          | dyn ->
            let gis = Array.map (fun (v, stride) -> (iget v, stride)) dyn in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_gep <- os.os_gep + 1;
              let obj = go fr in
              let d = ref (gf fr + static) in
              for i = 0 to Array.length gis - 1 do
                let gi, stride = gis.(i) in
                d := !d + (gi fr * stride)
              done;
              Array.unsafe_set fr.fr_pobj r obj;
              Array.unsafe_set fr.fr_poff r !d;
              next st fr)
        | Pgep (r, base, g) ->
          let gb = getter base in
          let apply delta (pm : Mval.t) : Mval.t =
            match Mval.as_ptr ctx pm with
            | Mobject.Pnull -> Mval.Vptr Mobject.Pnull
            | Mobject.Pobj a ->
              Mval.Vptr
                (Mobject.Pobj { a with Mobject.moff = a.Mobject.moff + delta })
            | Mobject.Pfunc _ as p ->
              Mval.Vptr
                (Mobject.Pinvalid
                   (Int64.add (Mobject.ptr_to_int p) (Int64.of_int delta)))
            | Mobject.Pinvalid c ->
              Mval.Vptr (Mobject.Pinvalid (Int64.add c (Int64.of_int delta)))
          in
          let static = g.pg_static in
          (match g.pg_dyn with
          | [||] ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_gep <- os.os_gep + 1;
              fr.fr_regs.(r) <- apply static (gb fr);
              next st fr
          | [| (iv, stride) |] ->
            let gi = iget iv in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_gep <- os.os_gep + 1;
              let b = gb fr in
              let d = static + (gi fr * stride) in
              fr.fr_regs.(r) <- apply d b;
              next st fr
          | dyn ->
            let gis = Array.map (fun (v, stride) -> (iget v, stride)) dyn in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_gep <- os.os_gep + 1;
              let b = gb fr in
              let d = ref static in
              for i = 0 to Array.length gis - 1 do
                let gi, stride = gis.(i) in
                d := !d + (gi fr * stride)
              done;
              fr.fr_regs.(r) <- apply !d b;
              next st fr)
        | Pbinop (r, op, s, a, b, cls_op) when cls_op <> Cfp && small s ->
          let f = ibinop_fn ctx op s in
          (match (a, b) with
          | Preg ra, Preg rb
            when cls.(ra) = Rint && cls.(rb) = Rint && cls.(r) = Rint ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_binop <- os.os_binop + 1;
              let ir = fr.fr_iregs in
              Array.unsafe_set ir r
                (f (Array.unsafe_get ir ra) (Array.unsafe_get ir rb));
              next st fr
          | a, b ->
            let ga = iget a and gb = iget b in
            let set = iset r in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_binop <- os.os_binop + 1;
              (* right-to-left like the interpreter's application order *)
              let y = gb fr in
              set fr (f (ga fr) y);
              next st fr)
        | Pbinop (r, op, s, a, b, Cfp)
          when (match op with
               | Instr.FAdd | Instr.FSub | Instr.FMul | Instr.FDiv -> true
               | _ -> false) ->
          let f = fbinop_fn op s in
          (match (a, b) with
          | Preg ra, Preg rb
            when cls.(ra) = Rfloat && cls.(rb) = Rfloat && cls.(r) = Rfloat ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_fp <- ctrs.c_fp + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_binop <- os.os_binop + 1;
              let fl = fr.fr_fregs in
              Array.unsafe_set fl r
                (f (Array.unsafe_get fl ra) (Array.unsafe_get fl rb));
              next st fr
          | a, b ->
            let ga = fget a and gb = fget b in
            let set = fset r in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_fp <- ctrs.c_fp + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_binop <- os.os_binop + 1;
              let y = gb fr in
              set fr (f (ga fr) y);
              next st fr)
        | Pbinop (r, op, s, a, b, cls_op) ->
          let f = binop_fn ctx op s in
          let fp = cls_op = Cfp in
          let ga = getter a and gb = getter b in
          fun st fr ->
            st.steps <- st.steps + 1;
            (if fp then ctrs.c_fp <- ctrs.c_fp + 1
             else ctrs.c_ops <- ctrs.c_ops + 1);
            if st.steps > limit then raise Step_limit_exceeded;
            if obs then os.os_binop <- os.os_binop + 1;
            let y = gb fr in
            fr.fr_regs.(r) <- f (ga fr) y;
            next st fr
        | Picmp (r, op, s, a, b) when small s ->
          let cmp = iicmp_fn op s in
          (match (a, b) with
          | Preg ra, Preg rb
            when cls.(ra) = Rint && cls.(rb) = Rint && cls.(r) = Rint ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_icmp <- os.os_icmp + 1;
              let ir = fr.fr_iregs in
              Array.unsafe_set ir r
                (if cmp (Array.unsafe_get ir ra) (Array.unsafe_get ir rb) then 1
                 else 0);
              next st fr
          | a, b ->
            let ga = iget a and gb = iget b in
            if cls.(r) = Rint then
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_icmp <- os.os_icmp + 1;
                let y = gb fr in
                Array.unsafe_set fr.fr_iregs r (if cmp (ga fr) y then 1 else 0);
                next st fr
            else
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_icmp <- os.os_icmp + 1;
                let y = gb fr in
                fr.fr_regs.(r) <- (if cmp (ga fr) y then vtrue else vfalse);
                next st fr)
        | Picmp (r, op, s, a, b) ->
          let cmp = icmp_fn op s in
          let ga = getter a and gb = getter b in
          let set = iset r in
          fun st fr ->
            st.steps <- st.steps + 1;
            ctrs.c_ops <- ctrs.c_ops + 1;
            if st.steps > limit then raise Step_limit_exceeded;
            if obs then os.os_icmp <- os.os_icmp + 1;
            let y = Mval.as_int (gb fr) in
            set fr (if cmp (Mval.as_int (ga fr)) y then 1 else 0)
            |> fun () -> next st fr
        | Pfcmp (r, op, a, b) ->
          let cmp = fcmp_fn op in
          (match (a, b) with
          | Preg ra, Preg rb
            when cls.(ra) = Rfloat && cls.(rb) = Rfloat && cls.(r) = Rint ->
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_fp <- ctrs.c_fp + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_fcmp <- os.os_fcmp + 1;
              let fl = fr.fr_fregs in
              Array.unsafe_set fr.fr_iregs r
                (if cmp (Array.unsafe_get fl ra) (Array.unsafe_get fl rb) then 1
                 else 0);
              next st fr
          | a, b ->
            let ga = fget a and gb = fget b in
            if cls.(r) = Rint then
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_fp <- ctrs.c_fp + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_fcmp <- os.os_fcmp + 1;
                let y = gb fr in
                Array.unsafe_set fr.fr_iregs r (if cmp (ga fr) y then 1 else 0);
                next st fr
            else
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_fp <- ctrs.c_fp + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_fcmp <- os.os_fcmp + 1;
                let y = gb fr in
                fr.fr_regs.(r) <- (if cmp (ga fr) y then vtrue else vfalse);
                next st fr)
        | Pcast (r, op, from, into, v) ->
          (match op with
          | (Instr.Trunc | Instr.Sext | Instr.Zext) when small into ->
            let ig = iget v in
            let set = iset r in
            let n = inorm into in
            let conv =
              match op with
              | Instr.Zext when small from ->
                let mf = imask from in
                fun x -> n (x land mf)
              | _ -> n
            in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_cast <- os.os_cast + 1;
              set fr (conv (ig fr));
              next st fr
          | (Instr.Fptosi | Instr.Fptoui) when small into ->
            let g = fget v in
            let set = iset r in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_cast <- os.os_cast + 1;
              set fr
                (Int64.to_int
                   (Irtype.normalize_int into (Irtype.float_to_int (g fr))));
              next st fr
          | Instr.Fptrunc ->
            let g = fget v in
            let set = fset r in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_cast <- os.os_cast + 1;
              set fr (Irtype.round_to_f32 (g fr));
              next st fr
          | Instr.Fpext ->
            let g = fget v in
            let set = fset r in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_cast <- os.os_cast + 1;
              set fr (g fr);
              next st fr
          | Instr.Sitofp ->
            let set = fset r in
            let rr : float -> float =
              if into = Irtype.F32 then Irtype.round_to_f32 else fun f -> f
            in
            (match v with
            | Preg rv when cls.(rv) = Rint ->
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_cast <- os.os_cast + 1;
                set fr (rr (float_of_int (Array.unsafe_get fr.fr_iregs rv)));
                next st fr
            | v ->
              let g = getter v in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_cast <- os.os_cast + 1;
                set fr (rr (Int64.to_float (Mval.as_int (g fr))));
                next st fr)
          | Instr.Uitofp ->
            let set = fset r in
            let rr : float -> float =
              if into = Irtype.F32 then Irtype.round_to_f32 else fun f -> f
            in
            (match v with
            | Preg rv when cls.(rv) = Rint && small from ->
              let mask = imask from in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_cast <- os.os_cast + 1;
                set fr
                  (rr (float_of_int (Array.unsafe_get fr.fr_iregs rv land mask)));
                next st fr
            | v ->
              let g = getter v in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_cast <- os.os_cast + 1;
                let u = Irtype.unsigned_of from (Mval.as_int (g fr)) in
                let f =
                  if u >= 0L then Int64.to_float u
                  else Int64.to_float u +. 18446744073709551616.0
                in
                set fr (rr f);
                next st fr)
          | Instr.Bitcast when Irtype.is_float_scalar from && into = Irtype.I32
            ->
            let g = fget v in
            let set = iset r in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_cast <- os.os_cast + 1;
              set fr (Int32.to_int (Int32.bits_of_float (g fr)));
              next st fr
          | Instr.Bitcast
            when (not (Irtype.is_float_scalar from))
                 && Irtype.is_float_scalar into ->
            let set = fset r in
            if into = Irtype.F32 then (
              match v with
              | Preg rv when cls.(rv) = Rint ->
                fun st fr ->
                  st.steps <- st.steps + 1;
                  ctrs.c_ops <- ctrs.c_ops + 1;
                  if st.steps > limit then raise Step_limit_exceeded;
                  if obs then os.os_cast <- os.os_cast + 1;
                  set fr
                    (Int32.float_of_bits
                       (Int32.of_int (Array.unsafe_get fr.fr_iregs rv)));
                  next st fr
              | v ->
                let g = getter v in
                fun st fr ->
                  st.steps <- st.steps + 1;
                  ctrs.c_ops <- ctrs.c_ops + 1;
                  if st.steps > limit then raise Step_limit_exceeded;
                  if obs then os.os_cast <- os.os_cast + 1;
                  set fr
                    (Int32.float_of_bits (Int64.to_int32 (Mval.as_int (g fr))));
                  next st fr)
            else
              let g = getter v in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_cast <- os.os_cast + 1;
                set fr (Int64.float_of_bits (Mval.as_int (g fr)));
                next st fr
          | Instr.Sext ->
            (* into I64/Ptr: the operand's normalized value IS the result *)
            let g = getter v in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_cast <- os.os_cast + 1;
              fr.fr_regs.(r) <- Mval.Vint (Mval.as_int (g fr));
              next st fr
          | Instr.Trunc ->
            let n = normalizer into in
            let g = getter v in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_cast <- os.os_cast + 1;
              fr.fr_regs.(r) <- Mval.Vint (n (Mval.as_int (g fr)));
              next st fr
          | Instr.Zext ->
            let u = Irtype.unsigned_of from in
            let n = normalizer into in
            let g = getter v in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_cast <- os.os_cast + 1;
              fr.fr_regs.(r) <- Mval.Vint (n (u (Mval.as_int (g fr))));
              next st fr
          | op ->
            let g = getter v in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_cast <- os.os_cast + 1;
              fr.fr_regs.(r) <- exec_cast op from into (g fr);
              next st fr)
        | Pselect (r, c, a, b) -> begin
          match cls.(r) with
          | Rint ->
            let gc = iget c and ga = iget a and gb = iget b in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_select <- os.os_select + 1;
              Array.unsafe_set fr.fr_iregs r (if gc fr = 0 then gb fr else ga fr);
              next st fr
          | Rfloat ->
            let gc = iget c and ga = fget a and gb = fget b in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_select <- os.os_select + 1;
              Array.unsafe_set fr.fr_fregs r (if gc fr = 0 then gb fr else ga fr);
              next st fr
          | Rptr ->
            let gc = iget c in
            let goa = pget_obj a and gfa = pget_off a in
            let gob = pget_obj b and gfb = pget_off b in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_select <- os.os_select + 1;
              if gc fr = 0 then begin
                Array.unsafe_set fr.fr_pobj r (gob fr);
                Array.unsafe_set fr.fr_poff r (gfb fr)
              end
              else begin
                Array.unsafe_set fr.fr_pobj r (goa fr);
                Array.unsafe_set fr.fr_poff r (gfa fr)
              end;
              next st fr
          | Rbox ->
            let gc = getter c and ga = getter a and gb = getter b in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_select <- os.os_select + 1;
              fr.fr_regs.(r) <-
                (if Int64.equal (Mval.as_int (gc fr)) 0L then gb fr else ga fr);
              next st fr
        end
        | Psancheck ->
          fun st fr ->
            st.steps <- st.steps + 1;
            ctrs.c_ops <- ctrs.c_ops + 1;
            if st.steps > limit then raise Step_limit_exceeded;
            if obs then os.os_sancheck <- os.os_sancheck + 1;
            next st fr
        | Ploc (line, col) ->
          (* provenance marker: free, exactly like the interpreter *)
          fun st fr ->
            fr.fr_line <- line;
            fr.fr_col <- col;
            next st fr
        | Pcall (r, callee, pargs, scalars) -> begin
          match Hashtbl.find_opt isites key with
          | Some site ->
            (* Inlined direct call: the callee's blocks were compiled as
               an instance at a disjoint register window; replay the
               interpreter's call protocol without the frame push.
               Order, as in [exec_instrs]/[call_function]: call charge,
               caller's c_calls, argument evaluation (ascending), depth
               increment and guard (context = caller's: the interpreter
               checks before pushing the callee frame), callee's
               c_invocations, then the callee entry. *)
            let callee_pf = site.is_callee in
            let cctrs = callee_pf.pf_counters in
            let centry, _ccells =
              instance callee_pf site.is_blocks
                empty_sites
                (Ret_inline (r, next))
                Pc_none
            in
            (* Guest-profiler enter: fires after the call charge (so the
               call instruction is attributed to the caller, as in
               [call_function]) and before any callee charge.  Wrapping
               [centry] keeps the non-profiling closure untouched. *)
            let centry =
              match prof with
              | None -> centry
              | Some p ->
                let cname = callee_pf.pf_name in
                fun st fr ->
                  Profile.enter p ~steps:st.steps cname;
                  centry st fr
            in
            let na = Array.length pargs in
            let gs = Array.map getter pargs in
            let params = site.is_params in
            let bound = min (Array.length params) na in
            fun st fr ->
              st.steps <- st.steps + 1;
              ctrs.c_ops <- ctrs.c_ops + 1;
              if st.steps > limit then raise Step_limit_exceeded;
              if obs then os.os_call <- os.os_call + 1;
              ctrs.c_calls <- ctrs.c_calls + 1;
              (* direct writes into the callee window are equivalent to
                 the interpreter's argv: the windows are disjoint, so
                 later argument reads cannot observe them *)
              for k = 0 to bound - 1 do
                fr.fr_regs.(params.(k)) <- gs.(k) fr
              done;
              for k = bound to na - 1 do
                ignore (gs.(k) fr)
              done;
              st.depth <- st.depth + 1;
              if st.depth > st.depth_limit then
                Merror.raise_error Merror.Stack_overflow_guard ctx;
              cctrs.c_invocations <- cctrs.c_invocations + 1;
              centry st fr
          | None ->
            let na = Array.length pargs in
            let gs = Array.map getter pargs in
            let eval_args fr =
              let argv = Array.make na Mval.zero in
              for k = 0 to na - 1 do
                argv.(k) <- gs.(k) fr
              done;
              argv
            in
            let finish : frame -> Mval.t option -> unit =
              if r < 0 then fun _ _ -> ()
              else fun fr res ->
                fr.fr_regs.(r) <- (match res with Some v -> v | None -> Mval.zero)
            in
            (match callee with
            | Pdirect tgt -> begin
              (* the link pass ran before execution began: [!tgt] is
                 stable, so the target resolves at compile time *)
              match !tgt with
              | Tgt_user callee_pf ->
                fun st fr ->
                  st.steps <- st.steps + 1;
                  ctrs.c_ops <- ctrs.c_ops + 1;
                  if st.steps > limit then raise Step_limit_exceeded;
                  if obs then os.os_call <- os.os_call + 1;
                  ctrs.c_calls <- ctrs.c_calls + 1;
                  finish fr (call_function st callee_pf (eval_args fr) scalars);
                  next st fr
              | Tgt_builtin (_, fn) ->
                fun st fr ->
                  st.steps <- st.steps + 1;
                  ctrs.c_ops <- ctrs.c_ops + 1;
                  if st.steps > limit then raise Step_limit_exceeded;
                  if obs then os.os_call <- os.os_call + 1;
                  ctrs.c_calls <- ctrs.c_calls + 1;
                  finish fr (fn st (eval_args fr));
                  next st fr
              | Tgt_unknown name ->
                fun st fr ->
                  st.steps <- st.steps + 1;
                  ctrs.c_ops <- ctrs.c_ops + 1;
                  if st.steps > limit then raise Step_limit_exceeded;
                  if obs then os.os_call <- os.os_call + 1;
                  ctrs.c_calls <- ctrs.c_calls + 1;
                  ignore (eval_args fr);
                  failwith ("interp: unknown builtin " ^ name)
            end
            | Pindirect (v, ic) ->
              let gv = getter v in
              fun st fr ->
                st.steps <- st.steps + 1;
                ctrs.c_ops <- ctrs.c_ops + 1;
                if st.steps > limit then raise Step_limit_exceeded;
                if obs then os.os_call <- os.os_call + 1;
                ctrs.c_calls <- ctrs.c_calls + 1;
                let argv = eval_args fr in
                (match Mval.as_ptr ctx (gv fr) with
                | Mobject.Pfunc name ->
                  let tgt =
                    if name == ic.ic_name || String.equal name ic.ic_name
                    then begin
                      if obs then os.os_ic_hit <- os.os_ic_hit + 1;
                      ic.ic_target
                    end
                    else begin
                      if obs then os.os_ic_miss <- os.os_ic_miss + 1;
                      let t = resolve_callee st name in
                      ic.ic_name <- name;
                      ic.ic_target <- t;
                      t
                    end
                  in
                  finish fr (exec_target st tgt argv scalars)
                | Mobject.Pnull -> Merror.raise_error Merror.Null_deref ctx
                | Mobject.Pobj _ | Mobject.Pinvalid _ ->
                  Merror.raise_error
                    (Merror.Type_violation
                       "indirect call through a data pointer")
                    ctx);
                next st fr)
        end
      in

      (* --- blocks: fold the instruction chain onto the terminator,
         fusing a trailing icmp/fcmp into its condbr when the compare
         register is dead otherwise (its only read is the branch
         itself) --- *)
      let compile_block (blk : pblock) : cont =
        let n = Array.length blk.pb_instrs in
        let fused : cont option =
          if n = 0 then None
          else
            match (blk.pb_instrs.(n - 1), blk.pb_term) with
            | Picmp (r, op, s, a, b), Pcondbr (Preg rc, ta, tb)
              when rc = r && uses.(r) = 1 && small s ->
              let cmp = iicmp_fn op s in
              (* two charges, exactly like the unfused icmp + terminator *)
              (match (a, b, edge_plain ta, edge_plain tb) with
              | Preg ra, Preg rb, Some ca, Some cb
                when cls.(ra) = Rint && cls.(rb) = Rint ->
                (* the whole loop-control idiom in one closure: native
                   compare of two unboxed registers, direct cell jump *)
                Some
                  (fun st fr ->
                    st.steps <- st.steps + 1;
                    ctrs.c_ops <- ctrs.c_ops + 1;
                    if st.steps > limit then raise Step_limit_exceeded;
                    if obs then os.os_icmp <- os.os_icmp + 1;
                    let ir = fr.fr_iregs in
                    let taken =
                      cmp (Array.unsafe_get ir ra) (Array.unsafe_get ir rb)
                    in
                    st.steps <- st.steps + 1;
                    ctrs.c_ops <- ctrs.c_ops + 1;
                    if st.steps > limit then raise Step_limit_exceeded;
                    if obs then os.os_term <- os.os_term + 1;
                    if taken then !ca st fr else !cb st fr)
              | a, b, Some ca, Some cb ->
                let ga = iget a and gb = iget b in
                Some
                  (fun st fr ->
                    st.steps <- st.steps + 1;
                    ctrs.c_ops <- ctrs.c_ops + 1;
                    if st.steps > limit then raise Step_limit_exceeded;
                    if obs then os.os_icmp <- os.os_icmp + 1;
                    let y = gb fr in
                    let taken = cmp (ga fr) y in
                    st.steps <- st.steps + 1;
                    ctrs.c_ops <- ctrs.c_ops + 1;
                    if st.steps > limit then raise Step_limit_exceeded;
                    if obs then os.os_term <- os.os_term + 1;
                    if taken then !ca st fr else !cb st fr)
              | a, b, _, _ ->
                let ka = compile_edge ta and kb = compile_edge tb in
                (match (a, b) with
                | Preg ra, Preg rb when cls.(ra) = Rint && cls.(rb) = Rint ->
                  Some
                    (fun st fr ->
                      st.steps <- st.steps + 1;
                      ctrs.c_ops <- ctrs.c_ops + 1;
                      if st.steps > limit then raise Step_limit_exceeded;
                      if obs then os.os_icmp <- os.os_icmp + 1;
                      let ir = fr.fr_iregs in
                      let taken =
                        cmp (Array.unsafe_get ir ra) (Array.unsafe_get ir rb)
                      in
                      st.steps <- st.steps + 1;
                      ctrs.c_ops <- ctrs.c_ops + 1;
                      if st.steps > limit then raise Step_limit_exceeded;
                      if obs then os.os_term <- os.os_term + 1;
                      if taken then ka st fr else kb st fr)
                | a, b ->
                  let ga = iget a and gb = iget b in
                  Some
                    (fun st fr ->
                      st.steps <- st.steps + 1;
                      ctrs.c_ops <- ctrs.c_ops + 1;
                      if st.steps > limit then raise Step_limit_exceeded;
                      if obs then os.os_icmp <- os.os_icmp + 1;
                      let y = gb fr in
                      let taken = cmp (ga fr) y in
                      st.steps <- st.steps + 1;
                      ctrs.c_ops <- ctrs.c_ops + 1;
                      if st.steps > limit then raise Step_limit_exceeded;
                      if obs then os.os_term <- os.os_term + 1;
                      if taken then ka st fr else kb st fr)))
            | Picmp (r, op, s, a, b), Pcondbr (Preg rc, ta, tb)
              when rc = r && uses.(r) = 1 ->
              let cmp = icmp_fn op s in
              let ka = compile_edge ta and kb = compile_edge tb in
              let ga = getter a and gb = getter b in
              Some
                (fun st fr ->
                  st.steps <- st.steps + 1;
                  ctrs.c_ops <- ctrs.c_ops + 1;
                  if st.steps > limit then raise Step_limit_exceeded;
                  if obs then os.os_icmp <- os.os_icmp + 1;
                  let y = Mval.as_int (gb fr) in
                  let taken = cmp (Mval.as_int (ga fr)) y in
                  st.steps <- st.steps + 1;
                  ctrs.c_ops <- ctrs.c_ops + 1;
                  if st.steps > limit then raise Step_limit_exceeded;
                  if obs then os.os_term <- os.os_term + 1;
                  if taken then ka st fr else kb st fr)
            | Pfcmp (r, op, a, b), Pcondbr (Preg rc, ta, tb)
              when rc = r && uses.(r) = 1 ->
              (* float loop controls (whetstone, fig15-float): compare
                 two unboxed floats and branch in one closure *)
              let cmp = fcmp_fn op in
              (match (a, b, edge_plain ta, edge_plain tb) with
              | Preg ra, Preg rb, Some ca, Some cb
                when cls.(ra) = Rfloat && cls.(rb) = Rfloat ->
                Some
                  (fun st fr ->
                    st.steps <- st.steps + 1;
                    ctrs.c_fp <- ctrs.c_fp + 1;
                    if st.steps > limit then raise Step_limit_exceeded;
                    if obs then os.os_fcmp <- os.os_fcmp + 1;
                    let fl = fr.fr_fregs in
                    let taken =
                      cmp (Array.unsafe_get fl ra) (Array.unsafe_get fl rb)
                    in
                    st.steps <- st.steps + 1;
                    ctrs.c_ops <- ctrs.c_ops + 1;
                    if st.steps > limit then raise Step_limit_exceeded;
                    if obs then os.os_term <- os.os_term + 1;
                    if taken then !ca st fr else !cb st fr)
              | a, b, Some ca, Some cb ->
                let ga = fget a and gb = fget b in
                Some
                  (fun st fr ->
                    st.steps <- st.steps + 1;
                    ctrs.c_fp <- ctrs.c_fp + 1;
                    if st.steps > limit then raise Step_limit_exceeded;
                    if obs then os.os_fcmp <- os.os_fcmp + 1;
                    let y = gb fr in
                    let taken = cmp (ga fr) y in
                    st.steps <- st.steps + 1;
                    ctrs.c_ops <- ctrs.c_ops + 1;
                    if st.steps > limit then raise Step_limit_exceeded;
                    if obs then os.os_term <- os.os_term + 1;
                    if taken then !ca st fr else !cb st fr)
              | a, b, _, _ ->
                let ka = compile_edge ta and kb = compile_edge tb in
                let ga = fget a and gb = fget b in
                Some
                  (fun st fr ->
                    st.steps <- st.steps + 1;
                    ctrs.c_fp <- ctrs.c_fp + 1;
                    if st.steps > limit then raise Step_limit_exceeded;
                    if obs then os.os_fcmp <- os.os_fcmp + 1;
                    let y = gb fr in
                    let taken = cmp (ga fr) y in
                    st.steps <- st.steps + 1;
                    ctrs.c_ops <- ctrs.c_ops + 1;
                    if st.steps > limit then raise Step_limit_exceeded;
                    if obs then os.os_term <- os.os_term + 1;
                    if taken then ka st fr else kb st fr))
            | _ -> None
        in
        let seed, upto =
          match fused with
          | Some k -> (k, n - 2)
          | None -> (compile_term blk.pb_term, n - 1)
        in
        let rec build i acc =
          if i < 0 then acc
          else build (i - 1) (compile_instr (blk.pb_index, i) blk.pb_instrs.(i) acc)
        in
        build upto seed
      in

      for j = 0 to nblocks - 1 do
        cells.(j) := compile_block iblocks.(j)
      done;
      (* Guest-profiler block notes: when profiling, wrap every block
         cell so entering the block flushes the step delta into the
         previous block and switches attribution — the same point the
         interpreter notes in [exec_instrs], i.e. after the edge's phi
         copies (credited to the predecessor, [compile_jump] runs them
         before dereferencing the cell).  When not profiling the cells
         stay untouched: zero cost. *)
      (match prof with
      | None -> ()
      | Some p ->
        for j = 0 to nblocks - 1 do
          let inner = !(cells.(j)) in
          let bs =
            Profile.block_stat p ~func:ipf.pf_name ~label:iblocks.(j).pb_label
          in
          cells.(j) :=
            fun st fr ->
              Profile.note_block p ~steps:st.steps bs;
              inner st fr
        done);
      let entry =
        match entry_copies with
        | Pc_none ->
          let c0 = cells.(0) in
          fun st fr -> !c0 st fr
        | copies -> compile_jump copies cells.(0)
      in
      (entry, cells)
    in

    let entry, cells =
      instance pf pf.pf_blocks sites Ret_fun
        pf.pf_entry_copies
    in

    (* --- register-file installation and OSR frame transfer --- *)
    let any_i = ref false and any_f = ref false and any_p = ref false in
    Array.iter
      (function
        | Rint -> any_i := true
        | Rfloat -> any_f := true
        | Rptr -> any_p := true
        | Rbox -> ())
      cls;
    let any_i = !any_i and any_f = !any_f and any_p = !any_p in
    let install (fr : frame) =
      if nregs > Array.length fr.fr_regs then begin
        (* inlined callees enlarged the register file *)
        let regs = Array.make nregs Mval.zero in
        Array.blit fr.fr_regs 0 regs 0 (Array.length fr.fr_regs);
        fr.fr_regs <- regs
      end;
      if any_i then fr.fr_iregs <- Array.make nregs 0;
      if any_f then fr.fr_fregs <- Array.make nregs 0.0;
      if any_p then begin
        fr.fr_pobj <- Array.make nregs Mobject.dummy;
        fr.fr_poff <- Array.make nregs 0
      end
    in
    (* Direct frame construction (DESIGN.md §11): [call_function]
       obtains frames through [cb_frame], which builds the register
       files right-sized in one shot — the generic path would allocate
       a [pf_nregs] boxed file only for [install] to immediately
       replace it with the enlarged copy.  (A recycling pool was
       measured and rejected: re-zeroing promoted arrays pays a write
       barrier per element, which loses to the minor allocator.)
       [cb_entry] therefore starts execution directly: acquired frames
       arrive fully installed. *)
    let nparams = pf.pf_nparams in
    let param_regs = pf.pf_param_regs in
    let acquire args arg_scalars =
      let regs = Array.make nregs Mval.zero in
      let bound = min nparams (Array.length args) in
      for i = 0 to bound - 1 do
        regs.(param_regs.(i)) <- args.(i)
      done;
      {
        fr_func = pf;
        fr_regs = regs;
        fr_iregs = (if any_i then Array.make nregs 0 else [||]);
        fr_fregs = (if any_f then Array.make nregs 0.0 else [||]);
        fr_pobj = (if any_p then Array.make nregs Mobject.dummy else [||]);
        fr_poff = (if any_p then Array.make nregs 0 else [||]);
        fr_args = args;
        fr_arg_scalars = arg_scalars;
        fr_variadic = pf.pf_variadic;
        fr_nparams = nparams;
        fr_line = 0;
        fr_col = 0;
      }
    in
    let cb_entry = entry in
    let cb_osr =
      if not (Array.exists (fun b -> b.pb_osr) pf.pf_blocks) then None
      else
        Some
          (fun st fr idx ->
            (* Frame transfer: the interpreter ran this invocation so
               far, so every live register sits boxed in [fr_regs];
               move each into its compiled class file.  A register
               whose box does not match its class is either unwritten
               (still [Mval.zero], represented identically by every
               class' zero — [as_float (Vint 0)] is [0.0]) or dead by
               SSA dominance, so the transfer is exact. *)
            let boxed = fr.fr_regs in
            let nold = Array.length boxed in
            install fr;
            for r = 0 to nold - 1 do
              match cls.(r) with
              | Rint -> begin
                match boxed.(r) with
                | Mval.Vint v -> fr.fr_iregs.(r) <- Int64.to_int v
                | Mval.Vfloat _ | Mval.Vptr _ -> ()
              end
              | Rfloat -> begin
                match boxed.(r) with
                | Mval.Vfloat f -> fr.fr_fregs.(r) <- f
                | Mval.Vint v -> fr.fr_fregs.(r) <- Int64.to_float v
                | Mval.Vptr _ -> ()
              end
              | Rptr -> begin
                match boxed.(r) with
                | Mval.Vptr (Mobject.Pobj a) ->
                  fr.fr_pobj.(r) <- a.Mobject.obj;
                  fr.fr_poff.(r) <- a.Mobject.moff
                | Mval.Vint _ | Mval.Vfloat _ | Mval.Vptr _ -> ()
              end
              | Rbox -> ()
            done;
            (* Scalar-replaced allocas: the interpreter prefix kept the
               slot in a real stack object (the box holds its pointer);
               read the live value through it into the slot register.
               The object itself goes stale from here on — sound
               because [plan_slots] proved its address unreachable from
               anywhere else.  The entry block (no predecessors) always
               ran before any OSR-able loop header, so the box is
               always a written pointer; anything else means the
               register is dead and the class zero stands. *)
            Hashtbl.iter
              (fun r s ->
                if r < nold then
                  match boxed.(r) with
                  | Mval.Vptr (Mobject.Pobj a) -> begin
                    let size = Irtype.scalar_size s in
                    match cls.(r) with
                    | Rint ->
                      fr.fr_iregs.(r) <-
                        Int64.to_int
                          (Irtype.normalize_int s
                             (Mobject.load_int a ~size pf.pf_context))
                    | Rfloat ->
                      fr.fr_fregs.(r) <- Mobject.load_float a ~size pf.pf_context
                    | Rbox | Rptr ->
                      fr.fr_regs.(r) <-
                        Mval.Vint (Mobject.load_int a ~size:8 pf.pf_context)
                  end
                  | Mval.Vint _ | Mval.Vfloat _ | Mval.Vptr _ -> ())
              slots;
            !(cells.(idx)) st fr)
    in
    { cb_entry; cb_osr; cb_frame = Some acquire; cb_release = None }
  end

