(** The mechanistic cycle model behind the performance reproduction
    (paper §4.2–4.3).

    The engines in lib/interp and lib/native *execute* the benchmark and
    count what they executed (per-class dynamic operation counts,
    allocation counts, libc calls).  This module prices those counts in
    cycles per engine.  The *mechanisms* are the paper's:

    - Clang -O3 is faster than -O0 because the optimized IR simply
      executes fewer operations (mem2reg/folding — measured, not
      assumed);
    - ASan pays a shadow check per instrumented access and redzone/
      quarantine work per allocation — so allocation-intensive programs
      (binarytrees) hurt the most;
    - Valgrind pays a translation overhead on *every* operation plus
      A/V-bit bookkeeping per memory access; FP-heavy code (spectralnorm)
      has high native per-op latency already, so its *relative* slowdown
      is the smallest — exactly the paper's 2.3x-58x spread;
    - Safe Sulong interprets at AST-interpreter speed until a function is
      hot, then runs code compiled under *safe* semantics: close to
      native on scalars and floats, with a residual bounds-check cost on
      memory accesses and cheap (GC/TLAB) allocation — which is why
      binarytrees is only ~1.7x while the shadow-memory tools explode.

    Absolute constants are calibrated so a few fixed points land near the
    paper's measurements (documented next to each constant); everything
    else *emerges* from the instruction mix. *)

let clock_hz = 2.6e9 (* the paper's i7-6700HQ *)

(* --- native machine op latencies (cycles, throughput-ish) --------- *)

let c_op = 1.0       (* int ALU *)
let c_fp = 8.0       (* FP add/mul/div/sqrt mix; latency dominates *)
let c_mem = 1.6      (* load/store incl. some cache misses *)
let c_call = 4.0
let c_branch = 1.2

(* Flat per-call costs of the precompiled libc's internal work (native
   engines only; Safe Sulong interprets its libc so this is measured
   there, not modelled). *)
let libc_call_cycles name =
  match name with
  | "printf" | "fprintf" | "sprintf" | "snprintf" | "puts" | "fputs" -> 350.0
  | "scanf" | "fscanf" | "fgets" -> 250.0
  | "malloc" | "calloc" | "realloc" -> 60.0
  | "free" -> 35.0
  | "strlen" | "strcmp" | "strncmp" | "strchr" | "strrchr" -> 40.0
  | "strcpy" | "strncpy" | "strcat" | "strncat" | "strstr" | "strtok"
  | "strdup" | "strspn" | "strcspn" ->
    60.0
  | "memcpy" | "memmove" | "memset" | "memcmp" -> 50.0
  | "qsort" -> 400.0
  | "sqrt" | "sin" | "cos" | "atan" | "exp" | "log" | "pow" | "fmod" -> 30.0
  | "putchar" | "fputc" | "getchar" | "fgetc" -> 15.0
  | _ -> 25.0

let libc_total (p : Nexec.profile) (per_call_extra : string -> float) : float =
  Hashtbl.fold
    (fun name count acc ->
      acc +. (float_of_int count *. (libc_call_cycles name +. per_call_extra name)))
    p.Nexec.libc_calls 0.0

let base_cycles (p : Nexec.profile) : float =
  (float_of_int p.Nexec.n_ops *. c_op)
  +. (float_of_int p.Nexec.n_fp *. c_fp)
  +. (float_of_int p.Nexec.n_mem *. c_mem)
  +. (float_of_int p.Nexec.n_calls *. c_call)
  +. (float_of_int p.Nexec.n_branches *. c_branch)

(* --- Clang (plain native) ----------------------------------------- *)

let clang_cycles (p : Nexec.profile) : float =
  base_cycles p +. libc_total p (fun _ -> 0.0)

(* --- ASan ---------------------------------------------------------- *)

let asan_check = 2.2      (* shadow load + compare + branch per access *)
let asan_alloc_extra = 1750.0 (* redzone poisoning + quarantine bookkeeping;
                                calibrated against binarytrees ~14x *)
let asan_free_extra = 900.0

let asan_cycles (p : Nexec.profile) : float =
  base_cycles p
  +. (float_of_int p.Nexec.n_checks *. asan_check)
  +. (float_of_int p.Nexec.n_allocs *. (asan_alloc_extra +. asan_free_extra))
  +. libc_total p (fun name ->
         (* interceptors re-walk their string arguments *)
         match name with
         | "strcpy" | "strcat" | "strlen" | "strcmp" | "puts" | "strstr" -> 45.0
         | "memcpy" | "memmove" | "memset" | "memcmp" -> 25.0
         | _ -> 0.0)

(* --- Valgrind/Memcheck --------------------------------------------- *)

let vg_op_overhead = 5.5   (* VEX dynamic translation, per executed op *)
let vg_mem_overhead = 11.0 (* A/V bit load/update per memory access *)
let vg_block_translate = 3000.0 (* one-time, per basic block *)
let vg_alloc_extra = 8500.0 (* intercepted allocator + freelist;
                               calibrated against binarytrees ~58x *)
let vg_libc_factor = 8.0   (* libc internals run translated too *)

let valgrind_cycles (p : Nexec.profile) : float =
  let ops = p.Nexec.n_ops + p.Nexec.n_fp + p.Nexec.n_calls + p.Nexec.n_branches in
  base_cycles p
  +. (float_of_int ops *. vg_op_overhead)
  +. (float_of_int p.Nexec.n_mem *. (vg_op_overhead +. vg_mem_overhead))
  +. (float_of_int p.Nexec.n_allocs *. vg_alloc_extra)
  +. libc_total p (fun name -> vg_libc_factor *. libc_call_cycles name)

(** Valgrind's one-time translation work (start-up/warm-up, not peak). *)
let valgrind_translation_cycles (p : Nexec.profile) : float =
  float_of_int p.Nexec.n_blocks_translated *. vg_block_translate

(* --- Safe Sulong ---------------------------------------------------- *)

(* AST-interpreter dispatch: every node execution boxes operands and
   dispatches virtually.  Calibrated so the warm-up curve has the
   paper's proportions (first meteor iteration around second 6 on a
   ~40-iterations/s-under-ASan workload: interpretation ~200x slower
   than instrumented native). *)
let interp_dispatch = 1000.0
let interp_call_extra = 1500.0 (* frame + argument boxing *)
let managed_alloc = 180.0     (* TLAB bump + init + GC amortized *)
let managed_alloc_per_byte = 1.8

let sulong_interp_fn_cycles (c : Interp.counters) : float =
  (float_of_int (c.Interp.c_ops + c.Interp.c_fp + c.Interp.c_mem)
  *. interp_dispatch)
  +. (float_of_int c.Interp.c_ops *. c_op)
  +. (float_of_int c.Interp.c_fp *. c_fp)
  +. (float_of_int c.Interp.c_mem *. c_mem)
  +. (float_of_int c.Interp.c_calls *. interp_call_extra)

(* Compiled under safe semantics: scalar/FP work at native speed (Graal
   is a real compiler), memory accesses keep a residual bounds/liveness
   check where the compiler cannot prove them away. *)
let compiled_check_residual = 3.0

let sulong_compiled_fn_cycles (c : Interp.counters) : float =
  (float_of_int c.Interp.c_ops *. (c_op +. 0.35))
  +. (float_of_int c.Interp.c_fp *. c_fp)
  +. (float_of_int c.Interp.c_mem *. (c_mem +. compiled_check_residual))
  +. (float_of_int c.Interp.c_calls *. (c_call +. 1.0))

let sulong_alloc_cycles ~(allocs : int) ~(bytes : int) : float =
  (float_of_int allocs *. managed_alloc)
  +. (float_of_int bytes *. managed_alloc_per_byte)

(* --- start-up (paper §4.2) ----------------------------------------- *)

(* Environment constants, calibrated to the paper's measurements for
   hello world: Safe Sulong ~600 ms (JVM init + libc parse), Valgrind
   ~500 ms (instrumenting the binary), ASan < 10 ms. *)
let jvm_init_s = 0.38
let sulong_parse_s_per_instr = 8.0e-5 (* parser + AST construction *)
let asan_startup_s = 0.006
let valgrind_startup_s = 0.47 (* tool load + initial translation *)
let native_startup_s = 0.002

(* --- JIT tier policy (paper §4.2 warm-up) --------------------------- *)

let hot_threshold_ops = 1_000_000 (* interpreted ops in a function before
                                   it is queued for compilation *)

(* Inlining policy for the closure compiler (DESIGN.md §11): a direct
   call to a leaf callee is inlined into the caller's compiled body when
   the callee is tiny, or when it is hot and still small.  The budget
   bounds total inlined instructions per caller so pathological call
   graphs cannot blow up compile time. *)
let inline_always_instrs = 24
let inline_max_callee_instrs = 96
let inline_hot_callee_ops = 50_000
let inline_budget_instrs = 1024
let compile_cycles_per_instr = 1.2e7 (* Graal partial evaluation is
                                        expensive: ~0.35 s for a
                                        100-instruction function *)
let compile_cycles_base = 1.2e9

let seconds cycles = cycles /. clock_hz
