(** Profile-driven tier controller: glue between the interpreter's
    [Interp.tierctl] hook, the shared hotness policy ([Hotness], the
    same accounting the warm-up simulation uses) and the closure
    compiler ([Closcomp]).  Records *real* tier-up events in the
    observability layer — a [jit.compiles] counter tick and a
    "jit-compile" trace span per compiled function — alongside the
    simulated ones emitted by [Simulate.warmup]. *)

(** A controller for [Interp.create ~tier].  Functions whose accumulated
    dynamic operations reach [threshold] (default
    [Costmodel.hot_threshold_ops], the paper's warm-up threshold) are
    swapped to their closure-compiled body at the next call.  A
    [threshold] of 0 compiles every function on first call — useful for
    tier-equivalence testing and short-running benchmark programs. *)
let controller ?(threshold = Costmodel.hot_threshold_ops) () : Interp.tierctl =
  {
    Interp.tc_hot = (fun c -> Hotness.is_hot ~threshold c);
    tc_compile =
      (fun st pf ->
        Trace.span
          ~args:[ ("function", pf.Interp.pf_name); ("tier", "compiled") ]
          "jit-compile"
          (fun () ->
            let body = Closcomp.compile st pf in
            Metrics.incr (Metrics.counter "jit.compiles");
            body));
  }
