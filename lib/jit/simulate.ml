(** Execution of the performance experiments: measure each benchmark
    under every engine (real execution → dynamic operation profile),
    price the profiles with [Costmodel], and simulate the paper's three
    time-domain experiments: start-up (§4.2), warm-up (Fig. 15) and peak
    performance (Fig. 16). *)

type measurement = {
  ms_name : string;
  clang_o0 : float;  (** cycles per benchmark iteration *)
  clang_o3 : float;
  asan : float;
  valgrind : float;
  valgrind_translation : float;  (** one-time cycles *)
  (* Safe Sulong per-function cycles per iteration, interpreted and
     compiled, plus allocation work and per-function static sizes. *)
  sulong_interp_fns : (string * float * int) list;
      (** (function, interp cycles/iter, interp ops/iter) *)
  sulong_compiled_fns : (string * float) list;
  sulong_alloc : float;
  static_sizes : (string * int) list;
  sulong_module_instrs : int;  (** for the libc-parsing start-up cost *)
}

(* [measure]/[measure_bench] — running the benchmarks under the real
   engines to obtain a measurement — live in [Harness.Measure]: they need
   [Engine] and [Corpus], which this library must not depend on (the
   tiered engine links [jit] for the closure compiler). *)

(* ------------------------------------------------------------------ *)
(* Peak performance (Fig. 16)                                          *)
(* ------------------------------------------------------------------ *)

(** Safe Sulong steady-state cycles per iteration (everything hot). *)
let sulong_peak_cycles (ms : measurement) : float =
  List.fold_left (fun acc (_, c) -> acc +. c) ms.sulong_alloc
    ms.sulong_compiled_fns

type peak_row = {
  pk_bench : string;
  pk_clang_o0 : Stats.boxplot;
  pk_clang_o3 : Stats.boxplot;
  pk_asan : Stats.boxplot;
  pk_sulong : Stats.boxplot;
  pk_valgrind_slowdown : float;  (** vs Clang -O0 median, text-reported *)
}

(** Sample [runs] "executions" with small deterministic run-to-run noise
    (the paper takes the last in-process iteration of each of 10 runs)
    and report box plots relative to the Clang -O0 median. *)
let peak ?(runs = 10) ?(noise = 0.02) ~(rng : Prng.t) (ms : measurement) :
    peak_row =
  let sample base =
    List.init runs (fun _ -> base *. (1.0 +. Prng.gaussian rng ~mu:0.0 ~sigma:noise))
  in
  let o0_samples = sample ms.clang_o0 in
  let denom = Stats.median o0_samples in
  let rel base = Stats.boxplot_relative (Stats.boxplot (sample base)) ~denom in
  {
    pk_bench = ms.ms_name;
    pk_clang_o0 = Stats.boxplot_relative (Stats.boxplot o0_samples) ~denom;
    pk_clang_o3 = rel ms.clang_o3;
    pk_asan = rel ms.asan;
    pk_sulong = rel (sulong_peak_cycles ms);
    pk_valgrind_slowdown = ms.valgrind /. denom;
  }

(* ------------------------------------------------------------------ *)
(* Warm-up (Fig. 15)                                                   *)
(* ------------------------------------------------------------------ *)

type warmup_series = {
  ws_tool : string;
  ws_points : (int * int) list;  (** (second, iterations completed) *)
}

type warmup_result = {
  wr_series : warmup_series list;
  wr_compiles : (float * string) list;  (** (completion time s, function) *)
  wr_first_iteration_s : float;
}

let bucketize ~duration_s (completion_times : float list) : (int * int) list =
  let buckets = Array.make duration_s 0 in
  List.iter
    (fun t ->
      let b = int_of_float t in
      if b >= 0 && b < duration_s then buckets.(b) <- buckets.(b) + 1)
    completion_times;
  Array.to_list (Array.mapi (fun i n -> (i, n)) buckets)

(** Simulate [duration_s] seconds of repeated benchmark iterations for
    Safe Sulong's tiered execution and the flat-rate tools. *)
let warmup ?(duration_s = 30) (ms : measurement) : warmup_result =
  (* --- Safe Sulong --- *)
  let startup =
    Costmodel.jvm_init_s
    +. (float_of_int ms.sulong_module_instrs *. Costmodel.sulong_parse_s_per_instr)
  in
  let compiled = Hashtbl.create 16 in
  (* available_at seconds once compiled *)
  let cum_ops = Hotness.acc_create () in
  let queued = Hashtbl.create 16 in
  let compiler_free_at = ref 0.0 in
  let compiles = ref [] in
  (* The loop below consults these per function per simulated iteration;
     index them once instead of re-scanning the association lists. *)
  let static_sizes = Hashtbl.create 32 and compiled_fns = Hashtbl.create 32 in
  List.iter (fun (f, s) -> Hashtbl.replace static_sizes f s) ms.static_sizes;
  List.iter (fun (f, c) -> Hashtbl.replace compiled_fns f c) ms.sulong_compiled_fns;
  let static_size f =
    Option.value (Hashtbl.find_opt static_sizes f) ~default:50
  in
  let compiled_cycles f =
    Option.value (Hashtbl.find_opt compiled_fns f) ~default:0.0
  in
  let t = ref startup in
  let completions = ref [] in
  let duration = float_of_int duration_s in
  while !t < duration do
    (* one iteration at the current tier states *)
    let iteration_cycles =
      List.fold_left
        (fun acc (f, interp_c, _) ->
          match Hashtbl.find_opt compiled f with
          | Some available_at when available_at <= !t ->
            acc +. compiled_cycles f
          | _ -> acc +. interp_c)
        ms.sulong_alloc ms.sulong_interp_fns
    in
    t := !t +. Costmodel.seconds iteration_cycles;
    if !t < duration then completions := !t :: !completions;
    (* hotness accounting and compile queue *)
    List.iter
      (fun (f, _, ops) ->
        let already_compiled =
          match Hashtbl.find_opt compiled f with
          | Some avail -> avail <= !t
          | None -> false
        in
        if (not already_compiled) && not (Hashtbl.mem queued f) then begin
          Hotness.record cum_ops f ops;
          if Hotness.hot cum_ops f then begin
            Hashtbl.replace queued f ();
            let start = Float.max !t !compiler_free_at in
            let compile_s =
              Costmodel.seconds
                (Costmodel.compile_cycles_base
                +. (float_of_int (static_size f) *. Costmodel.compile_cycles_per_instr))
            in
            let finish = start +. compile_s in
            compiler_free_at := finish;
            Hashtbl.replace compiled f finish;
            compiles := (finish, f) :: !compiles;
            (* per-function tier transition: interpreter -> compiled *)
            Trace.instant
              ~args:
                [
                  ("function", f);
                  ("tier", "compiled");
                  ("simulated_s", Printf.sprintf "%.3f" finish);
                ]
              "jit-compile";
            Metrics.incr (Metrics.counter "jit.compiles")
          end
        end)
      ms.sulong_interp_fns
  done;
  let sulong_completions = List.rev !completions in
  let first_iteration_s =
    match sulong_completions with t :: _ -> t | [] -> infinity
  in
  (* --- flat-rate tools --- *)
  let flat ~startup_s ~first_extra_cycles ~iter_cycles =
    let rec go t acc first =
      if t >= duration then List.rev acc
      else begin
        let cycles = if first then iter_cycles +. first_extra_cycles else iter_cycles in
        let t' = t +. Costmodel.seconds cycles in
        if t' >= duration then List.rev acc else go t' (t' :: acc) false
      end
    in
    go startup_s [] true
  in
  let asan_completions =
    flat ~startup_s:Costmodel.asan_startup_s ~first_extra_cycles:0.0
      ~iter_cycles:ms.asan
  in
  let vg_completions =
    flat ~startup_s:Costmodel.valgrind_startup_s
      ~first_extra_cycles:ms.valgrind_translation ~iter_cycles:ms.valgrind
  in
  {
    wr_series =
      [
        { ws_tool = "ASan"; ws_points = bucketize ~duration_s asan_completions };
        {
          ws_tool = "Valgrind";
          ws_points = bucketize ~duration_s vg_completions;
        };
        {
          ws_tool = "Safe Sulong";
          ws_points = bucketize ~duration_s sulong_completions;
        };
      ];
    wr_compiles = List.rev !compiles;
    wr_first_iteration_s = first_iteration_s;
  }

(* ------------------------------------------------------------------ *)
(* Start-up (paper §4.2)                                               *)
(* ------------------------------------------------------------------ *)

type startup_row = { su_tool : string; su_ms : float }

(** Start-up cost on hello world: time from process start to program
    exit, per tool. *)
let startup (ms : measurement) : startup_row list =
  let sulong_exec =
    List.fold_left (fun acc (_, c, _) -> acc +. c) ms.sulong_alloc
      ms.sulong_interp_fns
  in
  [
    {
      su_tool = "Safe Sulong";
      su_ms =
        1000.0
        *. (Costmodel.jvm_init_s
           +. (float_of_int ms.sulong_module_instrs
              *. Costmodel.sulong_parse_s_per_instr)
           +. Costmodel.seconds sulong_exec);
    };
    {
      su_tool = "Valgrind";
      su_ms =
        1000.0
        *. (Costmodel.valgrind_startup_s
           +. Costmodel.seconds (ms.valgrind +. ms.valgrind_translation));
    };
    {
      su_tool = "ASan";
      su_ms = 1000.0 *. (Costmodel.asan_startup_s +. Costmodel.seconds ms.asan);
    };
    {
      su_tool = "Clang -O0";
      su_ms =
        1000.0 *. (Costmodel.native_startup_s +. Costmodel.seconds ms.clang_o0);
    };
  ]
