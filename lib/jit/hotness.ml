(** Hotness accounting shared by the real tier controller
    ([Tier.controller]) and the simulated one ([Simulate.warmup]).
    Both consult the same per-function dynamic-operation total against
    the same [Costmodel.hot_threshold_ops] threshold, so the simulated
    and real tier-up points cannot drift. *)

(** Dynamic operations a function has executed, as counted by the
    interpreter's per-function profile: arithmetic + floating-point +
    memory accesses (calls excluded, matching [Costmodel]'s pricing). *)
let total_ops (c : Interp.counters) =
  c.Interp.c_ops + c.Interp.c_fp + c.Interp.c_mem

let is_hot ?(threshold = Costmodel.hot_threshold_ops) (c : Interp.counters) =
  total_ops c >= threshold

(** Accumulator for the warm-up simulation, which replays per-iteration
    op counts instead of reading live interpreter counters. *)
type acc = (string, int) Hashtbl.t

let acc_create () : acc = Hashtbl.create 16

(** Add [ops] freshly executed operations of function [f]. *)
let record (a : acc) f ops =
  Hashtbl.replace a f (ops + Option.value (Hashtbl.find_opt a f) ~default:0)

let hot ?(threshold = Costmodel.hot_threshold_ops) (a : acc) f =
  Option.value (Hashtbl.find_opt a f) ~default:0 >= threshold
