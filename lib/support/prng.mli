(** Deterministic pseudo-random number generator (SplitMix64).

    All randomness in the reproduction flows through this module so that
    every experiment is reproducible bit-for-bit from a seed. *)

type t

(** [create seed] makes an independent generator. *)
val create : int -> t

(** [copy t] snapshots the generator state. *)
val copy : t -> t

(** [reseed t seed] rewinds [t] to the state [create seed] produces. *)
val reseed : t -> int -> unit

(** Next raw 64-bit output. *)
val next_int64 : t -> int64

(** [int t bound] is uniform in [0, bound).  Raises [Invalid_argument]
    when [bound <= 0]. *)
val int : t -> int -> int

(** [float t bound] is uniform in [0, bound). *)
val float : t -> float -> float

(** Gaussian sample (Box-Muller). *)
val gaussian : t -> mu:float -> sigma:float -> float

(** Uniform element of a non-empty list. *)
val pick : t -> 'a list -> 'a

(** Uniformly shuffled copy. *)
val shuffle : t -> 'a list -> 'a list

(** Poisson sample (Knuth); 0 for non-positive [lambda]. *)
val poisson : t -> lambda:float -> int
