(** C-style floating-point formatting (%f / %e / %g), shared by every
    printf engine in the tree: the managed libc ([Interp]'s
    [__sulong_format_double] builtin behind lib/interp/libc_src.ml), the
    native-model libc (lib/native/nlibc.ml), and the differential-test
    oracle's expected-output renderer (lib/difftest/cprog.ml).

    Having one implementation is what lets difftest print float results
    as decimals instead of bit-punning them through an unsigned-long
    reinterpretation (DESIGN.md §10): all engines and the oracle
    agree by construction, and any engine that diverges from the shared
    renderer is a real bug.

    OCaml's [Printf] implements the C conversion semantics for
    [%f]/[%e]/[%g] (default precision 6, %g strips trailing zeros and
    switches to exponent notation outside [1e-4, 10^prec)), so this is a
    thin, total wrapper: no exceptions, NaN and infinities render as
    ["nan"]/["inf"] the way glibc prints them. *)

(** [format conv prec v] renders [v] like C's [printf("%.*<conv>", prec, v)].
    [conv] is one of ['f' 'F' 'e' 'E' 'g' 'G']; a negative [prec] means
    "no precision given" (C default, 6). *)
let format (conv : char) (prec : int) (v : float) : string =
  let prec = if prec < 0 then 6 else prec in
  let lower =
    match Char.lowercase_ascii conv with
    | 'f' -> Printf.sprintf "%.*f" prec v
    | 'e' -> Printf.sprintf "%.*e" prec v
    | 'g' -> Printf.sprintf "%.*g" (max prec 1) v
    | c -> invalid_arg (Printf.sprintf "Floatfmt.format: %%%c" c)
  in
  match conv with
  | 'F' | 'E' | 'G' -> String.uppercase_ascii lower
  | _ -> lower
