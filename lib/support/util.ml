(** Miscellaneous helpers shared across the reproduction. *)

(** [string_contains ~needle hay] is true when [needle] occurs in [hay];
    the keyword classifier of Figures 1-2 is built on this. *)
let string_contains ~needle hay =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 then true
  else if nl > hl then false
  else begin
    let rec at i =
      if i + nl > hl then false
      else if String.sub hay i nl = needle then true
      else at (i + 1)
    in
    at 0
  end

let lowercase = String.lowercase_ascii

(** Round [x] up to the next multiple of [align] (a power of two is not
    required). *)
let align_up x align =
  if align <= 0 then invalid_arg "Util.align_up";
  (x + align - 1) / align * align

(** [take n xs] is the first [n] elements of [xs] (or all of them). *)
let rec take n xs =
  match (n, xs) with
  | 0, _ | _, [] -> []
  | n, x :: rest -> x :: take (n - 1) rest

(** [range a b] is [a; a+1; ...; b-1]. *)
let range a b =
  let rec go i acc = if i >= b then List.rev acc else go (i + 1) (i :: acc) in
  go a []

(** [sum_by f xs] sums [f x] over the list. *)
let sum_by f xs = List.fold_left (fun acc x -> acc + f x) 0 xs

let sum_by_f f xs = List.fold_left (fun acc x -> acc +. f x) 0.0 xs

(** Escape [s] for embedding in a JSON string literal. *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b
