(** C-style floating-point formatting (%f / %e / %g), shared by the
    managed libc, the native-model libc, and the difftest oracle so all
    printf engines agree on decimal float rendering by construction. *)

(** [format conv prec v] renders [v] like C's
    [printf("%.*<conv>", prec, v)].  [conv] is one of
    ['f' 'F' 'e' 'E' 'g' 'G']; a negative [prec] means the C default
    precision (6).  Total: NaN/infinities render as ["nan"]/["inf"]. *)
val format : char -> int -> float -> string
