(** Deterministic pseudo-random number generator (SplitMix64).

    All randomness in the reproduction flows through this module so that
    every experiment is reproducible bit-for-bit from a seed.  SplitMix64
    is small, fast and has well-understood statistical quality for the
    non-cryptographic purposes we need (noise injection, synthetic
    database sampling, property-test data). *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(** Rewind [t] to the state [create seed] would produce; used by
    [Interp.reset] to make re-runs of a prepared state reproducible. *)
let reseed t seed = t.state <- Int64.of_int seed

(* One SplitMix64 step: add the Weyl constant, then finalize with the
   murmur-inspired mixer. *)
let next_int64 t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(** [int t bound] returns a uniform integer in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  Int64.to_int
    (Int64.unsigned_rem (next_int64 t) (Int64.of_int bound))

(** [float t bound] returns a uniform float in [0, bound). *)
let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  r /. 9007199254740992.0 *. bound

(** Gaussian sample via Box-Muller, mean [mu], std deviation [sigma]. *)
let gaussian t ~mu ~sigma =
  let u1 = Float.max 1e-12 (float t 1.0) in
  let u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

(** [pick t xs] picks a uniform element of the non-empty list [xs]. *)
let pick t xs =
  match xs with
  | [] -> invalid_arg "Prng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

(** [shuffle t xs] returns a uniformly shuffled copy of [xs]. *)
let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

(** Poisson sample (Knuth's method); adequate for the small means used by
    the synthetic vulnerability databases. *)
let poisson t ~lambda =
  if lambda <= 0.0 then 0
  else begin
    let limit = exp (-.lambda) in
    let rec loop k p =
      let p = p *. float t 1.0 in
      if p <= limit then k else loop (k + 1) p
    in
    loop 0 1.0
  end
