(** Promotion of scalar allocas to SSA registers — the optimization that
    turns Clang -O0-style memory traffic into register code, and the
    main source of the -O3 speedup in the performance model.

    Textbook algorithm: phi placement on iterated dominance frontiers,
    then a renaming walk over the dominator tree.  Only allocas of
    scalar type whose address is used exclusively as the direct pointer
    of loads and stores are promoted (arrays, structs, and anything
    whose address escapes stay in memory). *)

type varinfo = {
  v_reg : Instr.reg;   (** the alloca's result register *)
  v_scalar : Irtype.scalar;
}

(* Which allocas are promotable? *)
let promotable_allocas (f : Irfunc.t) : varinfo list =
  let candidates = Hashtbl.create 16 in
  Irfunc.iter_instrs f (fun _ i ->
      match i with
      | Instr.Alloca (r, Irtype.MScalar s) when s <> Irtype.I1 ->
        Hashtbl.replace candidates r s
      | _ -> ());
  (* Disqualify any candidate whose register appears anywhere except as
     the direct pointer of a load/store. *)
  let disqualify v =
    match v with
    | Instr.Reg r -> Hashtbl.remove candidates r
    | _ -> ()
  in
  List.iter
    (fun (b : Irfunc.block) ->
      List.iter
        (fun i ->
          match i with
          | Instr.Load (_, _, Instr.Reg _) -> ()
          | Instr.Store (_, v, Instr.Reg _) -> disqualify v
          | Instr.Store (_, v, p) ->
            disqualify v;
            disqualify p
          | Instr.Load (_, _, p) -> disqualify p
          | i -> List.iter disqualify (Instr.uses_of i))
        b.Irfunc.instrs;
      List.iter disqualify (Instr.term_uses b.Irfunc.term))
    f.Irfunc.blocks;
  (* A load of a different width than stored?  Loads/stores of other
     scalars through the same alloca stay legal in our engines, but
     promotion would change semantics; disqualify mixed-type traffic. *)
  Irfunc.iter_instrs f (fun _ i ->
      match i with
      | Instr.Load (_, s, Instr.Reg r) | Instr.Store (s, _, Instr.Reg r) -> begin
        match Hashtbl.find_opt candidates r with
        | Some s' when s' <> s -> Hashtbl.remove candidates r
        | _ -> ()
      end
      | _ -> ());
  Hashtbl.fold (fun r s acc -> { v_reg = r; v_scalar = s } :: acc) candidates []

let zero_value (s : Irtype.scalar) : Instr.value =
  if Irtype.is_float_scalar s then Instr.ImmFloat (0.0, s)
  else if s = Irtype.Ptr then Instr.Null
  else Instr.ImmInt (0L, s)

let run_func (f : Irfunc.t) : bool =
  let vars = promotable_allocas f in
  if vars = [] then false
  else begin
    Cfg.remove_unreachable f;
    let info = Cfg.compute f in
    let blocks = Cfg.block_map f in
    let var_of_reg = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace var_of_reg v.v_reg v) vars;
    (* 1. Blocks containing a store to each variable. *)
    let def_blocks : (Instr.reg, string list) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun (b : Irfunc.block) ->
        List.iter
          (fun i ->
            match i with
            | Instr.Store (_, _, Instr.Reg r) when Hashtbl.mem var_of_reg r ->
              let cur = Option.value (Hashtbl.find_opt def_blocks r) ~default:[] in
              if not (List.mem b.Irfunc.label cur) then
                Hashtbl.replace def_blocks r (b.Irfunc.label :: cur)
            | _ -> ())
          b.Irfunc.instrs)
      f.Irfunc.blocks;
    (* 2. Phi placement on iterated dominance frontiers.  [phis] maps
       (block, var) to the phi's result register. *)
    let phis : (string * Instr.reg, Instr.reg) Hashtbl.t = Hashtbl.create 16 in
    List.iter
      (fun v ->
        let worklist = Queue.create () in
        List.iter
          (fun l -> Queue.push l worklist)
          (Option.value (Hashtbl.find_opt def_blocks v.v_reg) ~default:[]);
        let placed = Hashtbl.create 8 in
        while not (Queue.is_empty worklist) do
          let l = Queue.pop worklist in
          List.iter
            (fun front ->
              if not (Hashtbl.mem placed front) then begin
                Hashtbl.replace placed front ();
                Hashtbl.replace phis (front, v.v_reg) (Irfunc.fresh_reg f);
                Queue.push front worklist
              end)
            (Option.value (Hashtbl.find_opt info.Cfg.df l) ~default:[])
        done)
      vars;
    (* 3. Renaming walk over the dominator tree. *)
    let children = Hashtbl.create 16 in
    Hashtbl.iter
      (fun child parent ->
        Hashtbl.replace children parent
          (child :: Option.value (Hashtbl.find_opt children parent) ~default:[]))
      info.Cfg.idom;
    (* per-variable definition stacks *)
    let stacks : (Instr.reg, Instr.value list ref) Hashtbl.t = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace stacks v.v_reg (ref [])) vars;
    let current v =
      match !(Hashtbl.find stacks v.v_reg) with
      | top :: _ -> top
      | [] -> zero_value v.v_scalar (* use before any store: undef -> zero *)
    in
    (* Collected phi instructions to prepend per block, with incoming
       filled during the walk. *)
    let phi_incoming : (string * Instr.reg, (string * Instr.value) list ref)
        Hashtbl.t =
      Hashtbl.create 16
    in
    Hashtbl.iter
      (fun key _ -> Hashtbl.replace phi_incoming key (ref []))
      phis;
    (* Replaced-load substitutions: function-global, since a load's
       result may be used in blocks the load's block dominates. *)
    let subst : (Instr.reg, Instr.value) Hashtbl.t = Hashtbl.create 32 in
    let rec walk label =
      let b = Hashtbl.find blocks label in
      let pushed = ref [] in
      (* phis defined in this block push a new definition *)
      List.iter
        (fun v ->
          match Hashtbl.find_opt phis (label, v.v_reg) with
          | Some phi_reg ->
            let st = Hashtbl.find stacks v.v_reg in
            st := Instr.Reg phi_reg :: !st;
            pushed := v.v_reg :: !pushed
          | None -> ())
        vars;
      let resolve v =
        match v with
        | Instr.Reg r -> begin
          match Hashtbl.find_opt subst r with Some x -> x | None -> v
        end
        | v -> v
      in
      let rewrite (i : Instr.instr) : Instr.instr option =
        match i with
        | Instr.Alloca (r, _) when Hashtbl.mem var_of_reg r -> None
        | Instr.Load (r, _, Instr.Reg p) when Hashtbl.mem var_of_reg p ->
          let v = Hashtbl.find var_of_reg p in
          Hashtbl.replace subst r (resolve (current v));
          None
        | Instr.Store (_, value, Instr.Reg p) when Hashtbl.mem var_of_reg p ->
          let v = Hashtbl.find var_of_reg p in
          let st = Hashtbl.find stacks v.v_reg in
          st := resolve value :: !st;
          pushed := v.v_reg :: !pushed;
          None
        | i ->
          (* resolve loads folded into substitutions *)
          let map_value = resolve in
          Some
            (match i with
            | Instr.Load (r, s, p) -> Instr.Load (r, s, map_value p)
            | Instr.Store (s, v, p) -> Instr.Store (s, map_value v, map_value p)
            | Instr.Gep (r, base, idx) ->
              Instr.Gep
                ( r,
                  map_value base,
                  List.map
                    (function
                      | Instr.Gindex (v, st) -> Instr.Gindex (map_value v, st)
                      | g -> g)
                    idx )
            | Instr.Binop (r, op, s, a, b2) ->
              Instr.Binop (r, op, s, map_value a, map_value b2)
            | Instr.Icmp (r, op, s, a, b2) ->
              Instr.Icmp (r, op, s, map_value a, map_value b2)
            | Instr.Fcmp (r, op, s, a, b2) ->
              Instr.Fcmp (r, op, s, map_value a, map_value b2)
            | Instr.Cast (r, op, from, into, v) ->
              Instr.Cast (r, op, from, into, map_value v)
            | Instr.Select (r, s, c, a, b2) ->
              Instr.Select (r, s, map_value c, map_value a, map_value b2)
            | Instr.Call (r, ret, callee, args) ->
              let callee =
                match callee with
                | Instr.Indirect v -> Instr.Indirect (map_value v)
                | c -> c
              in
              Instr.Call (r, ret, callee, List.map (fun (s, v) -> (s, map_value v)) args)
            | Instr.Phi (r, s, incoming) ->
              Instr.Phi (r, s, List.map (fun (l, v) -> (l, map_value v)) incoming)
            | Instr.Sancheck (k, p, size) -> Instr.Sancheck (k, map_value p, size)
            | (Instr.Alloca _ | Instr.Srcloc _) -> i)
      in
      b.Irfunc.instrs <- List.filter_map rewrite b.Irfunc.instrs;
      b.Irfunc.term <-
        (match b.Irfunc.term with
        | Instr.Ret (Some (s, v)) -> Instr.Ret (Some (s, resolve v))
        | Instr.Condbr (c, x, y) -> Instr.Condbr (resolve c, x, y)
        | Instr.Switch (v, cases, d) -> Instr.Switch (resolve v, cases, d)
        | t -> t);
      (* fill phi incoming of successors with current definitions *)
      List.iter
        (fun succ ->
          List.iter
            (fun v ->
              match Hashtbl.find_opt phis (succ, v.v_reg) with
              | Some _ ->
                let inc = Hashtbl.find phi_incoming (succ, v.v_reg) in
                inc := (label, current v) :: !inc
              | None -> ())
            vars)
        (Option.value (Hashtbl.find_opt info.Cfg.succs label) ~default:[]);
      (* recurse over dominator-tree children *)
      List.iter walk (Option.value (Hashtbl.find_opt children label) ~default:[]);
      (* pop pushed definitions *)
      List.iter
        (fun r ->
          let st = Hashtbl.find stacks r in
          match !st with
          | _ :: rest -> st := rest
          | [] -> ())
        !pushed
    in
    walk info.Cfg.order.(0);
    (* A phi's incoming operand for predecessor P names a value visible
       at the end of P — a block the pre-order dominator-tree walk may
       visit *after* the phi's own block.  If that operand was the
       result of a promoted load, the walk rewrote the phi before the
       load's substitution existed and then deleted the load, leaving a
       dangling register.  Re-resolve phi incoming through the final
       substitution map (stack values are pushed pre-resolved, so one
       pass suffices). *)
    List.iter
      (fun (b : Irfunc.block) ->
        b.Irfunc.instrs <-
          List.map
            (function
              | Instr.Phi (r, s, incoming) ->
                Instr.Phi
                  ( r,
                    s,
                    List.map
                      (fun (l, v) ->
                        match v with
                        | Instr.Reg rr -> (
                          match Hashtbl.find_opt subst rr with
                          | Some x -> (l, x)
                          | None -> (l, v))
                        | v -> (l, v))
                      incoming )
              | i -> i)
            b.Irfunc.instrs)
      f.Irfunc.blocks;
    (* materialize the phi instructions at block heads *)
    Hashtbl.iter
      (fun (label, var_reg) phi_reg ->
        let b = Hashtbl.find blocks label in
        let v = Hashtbl.find var_of_reg var_reg in
        let incoming = !(Hashtbl.find phi_incoming (label, var_reg)) in
        b.Irfunc.instrs <-
          Instr.Phi (phi_reg, v.v_scalar, incoming) :: b.Irfunc.instrs)
      phis;
    true
  end

let run (m : Irmod.t) : bool =
  List.fold_left (fun acc f -> run_func f || acc) false m.Irmod.funcs
