(** Function inlining (UB-pipeline extension).

    Not part of the default -O3 pipeline: the paper's evaluation numbers
    were taken with a fixed pass set, and inlining *changes the set of
    bugs the native tools can see* — a constant argument flowing into an
    inlined callee can turn a dynamic out-of-bounds access into a
    provably-OOB constant access that [Backendfold] then deletes, ASan
    check included.  `test/test_ir_opt.ml` and the ablation bench
    demonstrate exactly that (more P2).

    Implementation: bottom-up, size-budgeted.  A call to a small,
    non-recursive, non-variadic function is replaced by a renamed copy of
    its body; returns become branches to a continuation block carrying
    the result through a phi. *)

let default_budget = 40 (* max callee instructions worth inlining *)

(* ---- renaming helpers ------------------------------------------- *)

let remap_value map v =
  match v with
  | Instr.Reg r -> Instr.Reg (Hashtbl.find map r)
  | v -> v

let remap_gep map =
  List.map (function
    | Instr.Gindex (v, stride) -> Instr.Gindex (remap_value map v, stride)
    | g -> g)

let remap_instr map relabel (i : Instr.instr) : Instr.instr =
  let v = remap_value map in
  match i with
  | Instr.Alloca (r, mty) -> Instr.Alloca (Hashtbl.find map r, mty)
  | Instr.Load (r, s, p) -> Instr.Load (Hashtbl.find map r, s, v p)
  | Instr.Store (s, x, p) -> Instr.Store (s, v x, v p)
  | Instr.Gep (r, base, idx) ->
    Instr.Gep (Hashtbl.find map r, v base, remap_gep map idx)
  | Instr.Binop (r, op, s, a, b) -> Instr.Binop (Hashtbl.find map r, op, s, v a, v b)
  | Instr.Icmp (r, op, s, a, b) -> Instr.Icmp (Hashtbl.find map r, op, s, v a, v b)
  | Instr.Fcmp (r, op, s, a, b) -> Instr.Fcmp (Hashtbl.find map r, op, s, v a, v b)
  | Instr.Cast (r, op, from, into, x) ->
    Instr.Cast (Hashtbl.find map r, op, from, into, v x)
  | Instr.Select (r, s, c, a, b) ->
    Instr.Select (Hashtbl.find map r, s, v c, v a, v b)
  | Instr.Call (r, ret, callee, args) ->
    let callee =
      match callee with
      | Instr.Indirect x -> Instr.Indirect (v x)
      | c -> c
    in
    Instr.Call
      (Option.map (Hashtbl.find map) r, ret, callee,
       List.map (fun (s, x) -> (s, v x)) args)
  | Instr.Phi (r, s, incoming) ->
    Instr.Phi
      (Hashtbl.find map r, s, List.map (fun (l, x) -> (relabel l, v x)) incoming)
  | Instr.Sancheck (k, p, size) -> Instr.Sancheck (k, v p, size)
  | Instr.Srcloc _ as i -> i

(* ---- inlinability ------------------------------------------------ *)

let calls_self (f : Irfunc.t) =
  let found = ref false in
  Irfunc.iter_instrs f (fun _ i ->
      match i with
      | Instr.Call (_, _, Instr.Direct callee, _) when callee = f.Irfunc.name ->
        found := true
      | _ -> ());
  !found

let has_return (f : Irfunc.t) =
  List.exists
    (fun (b : Irfunc.block) ->
      match b.Irfunc.term with Instr.Ret _ -> true | _ -> false)
    f.Irfunc.blocks

let inlinable ~budget (f : Irfunc.t) =
  (not f.Irfunc.variadic)
  && Irfunc.instr_count f <= budget
  && (not (calls_self f))
  && has_return f

(* ---- the transformation ------------------------------------------ *)

(* Inline [callee] at one call site in [caller]; [blk] is split at the
   call: instructions before it stay, the callee body follows, and a
   continuation block receives the tail plus the result phi. *)
let inline_at (caller : Irfunc.t) (blk : Irfunc.block)
    ~(before : Instr.instr list) ~(call_result : Instr.reg option)
    ~(args : (Irtype.scalar * Instr.value) list)
    ~(after : Instr.instr list) (callee : Irfunc.t) : unit =
  let suffix = Printf.sprintf "%s.in%d" callee.Irfunc.name caller.Irfunc.next_reg in
  let relabel l = l ^ "." ^ suffix in
  (* fresh registers for every callee register *)
  let map = Hashtbl.create 32 in
  let fresh r =
    if not (Hashtbl.mem map r) then Hashtbl.replace map r (Irfunc.fresh_reg caller)
  in
  List.iter (fun (r, _) -> fresh r) callee.Irfunc.params;
  List.iter
    (fun (b : Irfunc.block) ->
      List.iter
        (fun i -> match Instr.def_of i with Some r -> fresh r | None -> ())
        b.Irfunc.instrs)
    callee.Irfunc.blocks;
  let cont_label = "cont." ^ suffix in
  (* copy the callee's blocks, redirecting returns to the continuation *)
  let returns = ref [] in
  let copied =
    List.map
      (fun (b : Irfunc.block) ->
        let label = relabel b.Irfunc.label in
        let instrs = List.map (remap_instr map relabel) b.Irfunc.instrs in
        let term =
          match b.Irfunc.term with
          | Instr.Ret (Some (_, v)) ->
            returns := (label, remap_value map v) :: !returns;
            Instr.Br cont_label
          | Instr.Ret None ->
            returns := (label, Instr.Null) :: !returns;
            Instr.Br cont_label
          | Instr.Br l -> Instr.Br (relabel l)
          | Instr.Condbr (c, a, b2) ->
            Instr.Condbr (remap_value map c, relabel a, relabel b2)
          | Instr.Switch (v, cases, d) ->
            Instr.Switch
              (remap_value map v,
               List.map (fun (k, l) -> (k, relabel l)) cases,
               relabel d)
          | Instr.Unreachable -> Instr.Unreachable
        in
        { Irfunc.label; instrs; term })
      callee.Irfunc.blocks
  in
  (* parameter binding: copies into the fresh parameter registers are
     expressed as phi-free moves via Binop add 0 (no dedicated mov) *)
  let entry_label = relabel (Irfunc.entry callee).Irfunc.label in
  let param_moves =
    List.map2
      (fun (pr, ps) (_, av) ->
        let fresh_r = Hashtbl.find map pr in
        match ps with
        | Irtype.F32 | Irtype.F64 ->
          (* x + (-0.0) is the identity for every x including -0.0
             (x + 0.0 would flip -0.0 to +0.0). *)
          Instr.Binop (fresh_r, Instr.FAdd, ps, av, Instr.ImmFloat (-0.0, ps))
        | Irtype.Ptr ->
          (* ptr + 0 via gep keeps pointer-ness *)
          Instr.Gep (fresh_r, av, [ Instr.Gfield (0, 0) ])
        | s -> Instr.Binop (fresh_r, Instr.Add, s, av, Instr.ImmInt (0L, s)))
      callee.Irfunc.params args
  in
  (* continuation block: phi of returned values + the original tail *)
  let cont_instrs =
    match call_result with
    | Some r when !returns <> [] -> begin
      (* scalar of the result: taken from the callee's return type *)
      match callee.Irfunc.ret with
      | Some s -> [ Instr.Phi (r, s, List.rev !returns) ] @ after
      | None -> after
    end
    | _ -> after
  in
  let cont_block =
    { Irfunc.label = cont_label; instrs = cont_instrs; term = blk.Irfunc.term }
  in
  (* rewrite the original block: prefix + param moves + jump into body *)
  blk.Irfunc.instrs <- before @ param_moves;
  blk.Irfunc.term <- Instr.Br entry_label;
  (* phis in blocks after the call that referenced [blk] must now refer
     to the continuation *)
  List.iter
    (fun (b : Irfunc.block) ->
      if b != blk then
        b.Irfunc.instrs <-
          List.map
            (fun i ->
              match i with
              | Instr.Phi (r, s, inc) ->
                Instr.Phi
                  ( r, s,
                    List.map
                      (fun (l, v) ->
                        ((if l = blk.Irfunc.label then cont_label else l), v))
                      inc )
              | i -> i)
            b.Irfunc.instrs)
    caller.Irfunc.blocks;
  caller.Irfunc.blocks <- caller.Irfunc.blocks @ copied @ [ cont_block ]

(* Find and inline one eligible call site in [caller]; true if found. *)
let inline_one (m : Irmod.t) ~budget (caller : Irfunc.t) : bool =
  let found = ref false in
  List.iter
    (fun (blk : Irfunc.block) ->
      if not !found then begin
        let rec split before = function
          | [] -> ()
          | (Instr.Call (r, _, Instr.Direct callee_name, args) as call_i)
            :: after
            when not !found -> begin
            match Irmod.find_func m callee_name with
            | Some callee
              when callee.Irfunc.name <> caller.Irfunc.name
                   && inlinable ~budget callee
                   && List.length args = List.length callee.Irfunc.params ->
              found := true;
              inline_at caller blk ~before:(List.rev before) ~call_result:r
                ~args ~after callee
            | _ -> split (call_i :: before) after
          end
          | i :: after -> split (i :: before) after
        in
        split [] blk.Irfunc.instrs
      end)
    caller.Irfunc.blocks;
  !found

(** Inline eligible call sites module-wide, to a fixed point with a
    round limit (so mutual recursion cannot loop). *)
let run ?(budget = default_budget) (m : Irmod.t) : bool =
  let changed = ref false in
  let rounds = ref 0 in
  let continue_loop = ref true in
  while !continue_loop && !rounds < 4 do
    incr rounds;
    let any =
      List.fold_left (fun acc f -> inline_one m ~budget f || acc) false
        m.Irmod.funcs
    in
    if any then changed := true else continue_loop := false
  done;
  !changed
