(** Constant folding and algebraic simplification.  Semantics must match
    the engines exactly (same normalization), otherwise optimized and
    unoptimized runs would diverge on correct programs. *)

let imm s v = Instr.ImmInt (Irtype.normalize_int s v, s)

let as_const (v : Instr.value) : int64 option =
  match v with Instr.ImmInt (x, _) -> Some x | _ -> None

let as_fconst (v : Instr.value) : float option =
  match v with
  | Instr.ImmFloat (f, _) -> Some f
  | _ -> None

let fimm s f = Instr.ImmFloat (Irtype.round_result s f, s)

let fold_binop op s a b : Instr.value option =
  match (op, as_const a, as_const b, as_fconst a, as_fconst b) with
  | Instr.FAdd, _, _, Some x, Some y -> Some (fimm s (x +. y))
  | Instr.FSub, _, _, Some x, Some y -> Some (fimm s (x -. y))
  | Instr.FMul, _, _, Some x, Some y -> Some (fimm s (x *. y))
  | Instr.FDiv, _, _, Some x, Some y -> Some (fimm s (x /. y))
  | _, Some x, Some y, _, _ -> begin
    let open Instr in
    match op with
    | Add -> Some (imm s (Int64.add x y))
    | Sub -> Some (imm s (Int64.sub x y))
    | Mul -> Some (imm s (Int64.mul x y))
    | Sdiv when y <> 0L -> Some (imm s (Int64.div x y))
    | Srem when y <> 0L -> Some (imm s (Int64.rem x y))
    | Udiv when y <> 0L ->
      Some
        (imm s
           (Int64.unsigned_div (Irtype.unsigned_of s x) (Irtype.unsigned_of s y)))
    | Urem when y <> 0L ->
      Some
        (imm s
           (Int64.unsigned_rem (Irtype.unsigned_of s x) (Irtype.unsigned_of s y)))
    | Shl -> Some (imm s (Int64.shift_left x (Int64.to_int y land 63)))
    | Lshr ->
      Some
        (imm s
           (Int64.shift_right_logical (Irtype.unsigned_of s x)
              (Int64.to_int y land 63)))
    | Ashr -> Some (imm s (Int64.shift_right x (Int64.to_int y land 63)))
    | And -> Some (imm s (Int64.logand x y))
    | Or -> Some (imm s (Int64.logor x y))
    | Xor -> Some (imm s (Int64.logxor x y))
    | _ -> None
  end
  (* Algebraic identities with one constant side. *)
  | Instr.Add, Some 0L, None, _, _ -> Some b
  | Instr.Add, None, Some 0L, _, _ -> Some a
  | Instr.Sub, None, Some 0L, _, _ -> Some a
  | Instr.Mul, Some 1L, None, _, _ -> Some b
  | Instr.Mul, None, Some 1L, _, _ -> Some a
  | Instr.Mul, Some 0L, None, _, _ -> Some (imm s 0L)
  | Instr.Mul, None, Some 0L, _, _ -> Some (imm s 0L)
  | _ -> None

let fold_icmp op s a b : Instr.value option =
  match (as_const a, as_const b) with
  | Some x, Some y ->
    let open Instr in
    let u v = Irtype.unsigned_of s v in
    let r =
      match op with
      | Ieq -> x = y
      | Ine -> x <> y
      | Islt -> x < y
      | Isle -> x <= y
      | Isgt -> x > y
      | Isge -> x >= y
      | Iult -> Int64.unsigned_compare (u x) (u y) < 0
      | Iule -> Int64.unsigned_compare (u x) (u y) <= 0
      | Iugt -> Int64.unsigned_compare (u x) (u y) > 0
      | Iuge -> Int64.unsigned_compare (u x) (u y) >= 0
    in
    Some (imm Irtype.I1 (if r then 1L else 0L))
  | _ -> None

let fold_cast op from into v : Instr.value option =
  match (v : Instr.value) with
  | Instr.ImmInt (x, _) -> begin
    match (op : Instr.cast) with
    | Instr.Trunc | Instr.Inttoptr | Instr.Ptrtoint ->
      Some (imm into x)
    | Instr.Zext -> Some (imm into (Irtype.unsigned_of from x))
    | Instr.Sext -> Some (imm into x)
    | Instr.Sitofp -> Some (fimm into (Int64.to_float x))
    | Instr.Uitofp ->
      let u = Irtype.unsigned_of from x in
      let f =
        if u >= 0L then Int64.to_float u
        else Int64.to_float u +. 18446744073709551616.0
      in
      Some (fimm into f)
    | _ -> None
  end
  | Instr.ImmFloat (f, _) -> begin
    match op with
    | Instr.Fpext -> Some (Instr.ImmFloat (f, into))
    | Instr.Fptrunc -> Some (Instr.ImmFloat (Irtype.round_to_f32 f, into))
    | Instr.Fptosi | Instr.Fptoui -> Some (imm into (Irtype.float_to_int f))
    | _ -> None
  end
  | Instr.Null -> begin
    match op with
    | Instr.Ptrtoint -> Some (imm into 0L)
    | _ -> None
  end
  | _ -> None

(** One folding sweep over [f]; returns true if anything changed. *)
let run_func (f : Irfunc.t) : bool =
  let changed = ref false in
  let subst : (Instr.reg, Instr.value) Hashtbl.t = Hashtbl.create 32 in
  let resolve v =
    match v with
    | Instr.Reg r -> begin
      match Hashtbl.find_opt subst r with Some x -> x | None -> v
    end
    | v -> v
  in
  let fold_instr (i : Instr.instr) : Instr.instr option =
    match i with
    | Instr.Binop (r, op, s, a, b) -> begin
      let a = resolve a and b = resolve b in
      match fold_binop op s a b with
      | Some value ->
        Hashtbl.replace subst r value;
        changed := true;
        None
      | None -> Some (Instr.Binop (r, op, s, a, b))
    end
    | Instr.Icmp (r, op, s, a, b) -> begin
      let a = resolve a and b = resolve b in
      match fold_icmp op s a b with
      | Some value ->
        Hashtbl.replace subst r value;
        changed := true;
        None
      | None -> Some (Instr.Icmp (r, op, s, a, b))
    end
    | Instr.Fcmp (r, op, s, a, b) -> Some (Instr.Fcmp (r, op, s, resolve a, resolve b))
    | Instr.Cast (r, op, from, into, v) -> begin
      let v = resolve v in
      match fold_cast op from into v with
      | Some value ->
        Hashtbl.replace subst r value;
        changed := true;
        None
      | None -> Some (Instr.Cast (r, op, from, into, v))
    end
    | Instr.Select (r, s, c, a, b) -> begin
      let c = resolve c and a = resolve a and b = resolve b in
      match as_const c with
      | Some x ->
        Hashtbl.replace subst r (if x <> 0L then a else b);
        changed := true;
        None
      | None -> Some (Instr.Select (r, s, c, a, b))
    end
    | Instr.Load (r, s, p) -> Some (Instr.Load (r, s, resolve p))
    | Instr.Store (s, v, p) -> Some (Instr.Store (s, resolve v, resolve p))
    | Instr.Gep (r, base, idx) ->
      Some
        (Instr.Gep
           ( r,
             resolve base,
             List.map
               (function
                 | Instr.Gindex (v, stride) -> Instr.Gindex (resolve v, stride)
                 | g -> g)
               idx ))
    | Instr.Call (r, ret, callee, args) ->
      let callee =
        match callee with
        | Instr.Indirect v -> Instr.Indirect (resolve v)
        | c -> c
      in
      Some (Instr.Call (r, ret, callee, List.map (fun (s, v) -> (s, resolve v)) args))
    | Instr.Phi (r, s, incoming) ->
      Some (Instr.Phi (r, s, List.map (fun (l, v) -> (l, resolve v)) incoming))
    | Instr.Sancheck (k, p, size) -> Some (Instr.Sancheck (k, resolve p, size))
    | (Instr.Alloca _ | Instr.Srcloc _) -> Some i
  in
  (* Iterate block-internally until the substitution map stabilizes (a
     fold can enable another across blocks because subst is global to
     the function and registers are in SSA-ish single-def form). *)
  let inner_changed = ref true in
  while !inner_changed do
    inner_changed := false;
    List.iter
      (fun (b : Irfunc.block) ->
        let before = List.length b.Irfunc.instrs in
        b.Irfunc.instrs <- List.filter_map fold_instr b.Irfunc.instrs;
        if List.length b.Irfunc.instrs <> before then inner_changed := true)
      f.Irfunc.blocks
  done;
  (* Rewrite terminators; fold constant conditional branches. *)
  List.iter
    (fun (b : Irfunc.block) ->
      let term =
        match b.Irfunc.term with
        | Instr.Ret (Some (s, v)) -> Instr.Ret (Some (s, resolve v))
        | Instr.Condbr (c, t, e) -> begin
          match resolve c with
          | Instr.ImmInt (x, _) ->
            changed := true;
            Instr.Br (if x <> 0L then t else e)
          | c -> Instr.Condbr (c, t, e)
        end
        | Instr.Switch (v, cases, default) -> begin
          match resolve v with
          | Instr.ImmInt (x, _) ->
            changed := true;
            let target =
              match List.find_opt (fun (k, _) -> k = x) cases with
              | Some (_, l) -> l
              | None -> default
            in
            Instr.Br target
          | v -> Instr.Switch (v, cases, default)
        end
        | t -> t
      in
      b.Irfunc.term <- term)
    f.Irfunc.blocks;
  !changed

let run (m : Irmod.t) : bool =
  List.fold_left (fun acc f -> run_func f || acc) false m.Irmod.funcs
