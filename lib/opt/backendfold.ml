(** The "LLVM backend" peephole (paper §4.1 case study 3).

    Even at -O0, real code generation folds some constructs — the paper
    found Clang -O0 deleting a constant-index out-of-bounds read of a
    global array (Figure 13), which removed the bug before ASan's check
    could fire, while Safe Sulong (interpreting the front-end IR)
    still saw it.

    This pass runs as part of *native code generation only* — every
    native pipeline (plain, ASan, Memcheck) at every optimization level
    gets it; Safe Sulong never does, because it executes the front-end
    output directly.

    Rule: a load/store through a Gep on a global with all-constant
    indices whose byte range falls provably outside the global is
    undefined; the backend replaces the load's result with 0 and deletes
    the access. *)

let const_gep_offset (indices : Instr.gep_index list) : int option =
  List.fold_left
    (fun acc idx ->
      match (acc, idx) with
      | None, _ -> None
      | Some off, Instr.Gfield (_, fo) -> Some (off + fo)
      | Some off, Instr.Gindex (Instr.ImmInt (v, _), stride) ->
        Some (off + (Int64.to_int v * stride))
      | Some _, Instr.Gindex _ -> None)
    (Some 0) indices

let run (m : Irmod.t) : bool =
  let changed = ref false in
  let global_size name =
    Option.map (fun (g : Irmod.global) -> Irtype.mty_size g.Irmod.g_ty)
      (Irmod.find_global m name)
  in
  List.iter
    (fun (f : Irfunc.t) ->
      (* Map: gep result reg -> (global, const offset), built per function. *)
      let known_geps = Hashtbl.create 16 in
      Irfunc.iter_instrs f (fun _ i ->
          match i with
          | Instr.Gep (r, Instr.GlobalAddr g, idx) -> begin
            match const_gep_offset idx with
            | Some off -> Hashtbl.replace known_geps r (g, off)
            | None -> ()
          end
          | _ -> ());
      let provably_oob ptr size =
        match ptr with
        | Instr.Reg r -> begin
          match Hashtbl.find_opt known_geps r with
          | Some (g, off) -> begin
            match global_size g with
            | Some gsize -> off < 0 || off + size > gsize
            | None -> false
          end
          | None -> false
        end
        | _ -> false
      in
      let subst = Hashtbl.create 8 in
      Irfunc.rewrite_blocks f (fun b ->
          List.filter_map
            (fun i ->
              match i with
              | Instr.Load (r, s, p) when provably_oob p (Irtype.scalar_size s) ->
                changed := true;
                let zero =
                  if Irtype.is_float_scalar s then Instr.ImmFloat (0.0, s)
                  else if s = Irtype.Ptr then Instr.Null
                  else Instr.ImmInt (0L, s)
                in
                Hashtbl.replace subst r zero;
                None
              | Instr.Store (s, _, p) when provably_oob p (Irtype.scalar_size s) ->
                changed := true;
                None
              | i -> Some i)
            b.Irfunc.instrs);
      if Hashtbl.length subst > 0 then begin
        (* Propagate the folded zeros to all uses. *)
        let resolve v =
          match v with
          | Instr.Reg r -> begin
            match Hashtbl.find_opt subst r with Some x -> x | None -> v
          end
          | v -> v
        in
        Irfunc.rewrite_blocks f (fun b ->
            List.map
              (fun i ->
                match i with
                | Instr.Load (r, s, p) -> Instr.Load (r, s, resolve p)
                | Instr.Store (s, v, p) -> Instr.Store (s, resolve v, resolve p)
                | Instr.Gep (r, base, idx) ->
                  Instr.Gep
                    ( r,
                      resolve base,
                      List.map
                        (function
                          | Instr.Gindex (v, st) -> Instr.Gindex (resolve v, st)
                          | g -> g)
                        idx )
                | Instr.Binop (r, op, s, a, b2) ->
                  Instr.Binop (r, op, s, resolve a, resolve b2)
                | Instr.Icmp (r, op, s, a, b2) ->
                  Instr.Icmp (r, op, s, resolve a, resolve b2)
                | Instr.Fcmp (r, op, s, a, b2) ->
                  Instr.Fcmp (r, op, s, resolve a, resolve b2)
                | Instr.Cast (r, op, from, into, v) ->
                  Instr.Cast (r, op, from, into, resolve v)
                | Instr.Select (r, s, c, a, b2) ->
                  Instr.Select (r, s, resolve c, resolve a, resolve b2)
                | Instr.Call (r, ret, callee, args) ->
                  let callee =
                    match callee with
                    | Instr.Indirect v -> Instr.Indirect (resolve v)
                    | c -> c
                  in
                  Instr.Call
                    (r, ret, callee, List.map (fun (s, v) -> (s, resolve v)) args)
                | Instr.Phi (r, s, incoming) ->
                  Instr.Phi (r, s, List.map (fun (l, v) -> (l, resolve v)) incoming)
                | Instr.Sancheck (k, p, size) -> Instr.Sancheck (k, resolve p, size)
                | (Instr.Alloca _ | Instr.Srcloc _) -> i)
              b.Irfunc.instrs);
        List.iter
          (fun (b : Irfunc.block) ->
            b.Irfunc.term <-
              (match b.Irfunc.term with
              | Instr.Ret (Some (s, v)) -> Instr.Ret (Some (s, resolve v))
              | Instr.Condbr (c, x, y) -> Instr.Condbr (resolve c, x, y)
              | Instr.Switch (v, cases, d) -> Instr.Switch (resolve v, cases, d)
              | t -> t))
          f.Irfunc.blocks
      end)
    m.Irmod.funcs;
  !changed
