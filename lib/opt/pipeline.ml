(** Optimization pipelines, mirroring the configurations the paper
    compares:

    - [o0]: no middle-end optimization at all (the front-end output).
    - [o3]: the UB-exploiting Clang/LLVM middle end.
    - [backend]: code-generation folding that *all* native pipelines get,
      even at -O0 (paper case study 3).
    - [safe_jit]: what Graal may do for Safe Sulong — optimizations under
      safe semantics (run-time errors must still surface), so no dead
      -store/dead-loop deletion of trapping accesses and no UB tricks.

    Each function returns the number of pass iterations that changed
    something (useful for tests and the ablation bench). *)

type level = O0 | O3

let level_name = function O0 -> "-O0" | O3 -> "-O3"

(* Each pass runs under a [Metrics.time] histogram ("pass.<name>_us")
   and a trace span; both are no-ops when observability is off. *)
let timed name pass m =
  Trace.span name (fun () ->
      Metrics.time (Printf.sprintf "pass.%s_us" name) (fun () -> pass m))

let fixpoint passes m =
  let rounds = ref 0 in
  let changed = ref true in
  while !changed && !rounds < 8 do
    changed :=
      List.fold_left (fun acc (name, pass) -> timed name pass m || acc)
        false passes;
    if !changed then incr rounds
  done;
  !rounds

(** The -O3 middle end (UB semantics). *)
let o3 (m : Irmod.t) : int =
  fixpoint
    [
      ("fold", Fold.run);
      ("mem2reg", Mem2reg.run);
      ("fold", Fold.run);
      ("dce", Dce.run ~semantics:`Ub);
      ("dse", Dse.run);
      ("ubopt", Ubopt.run);
      ("simplifycfg", Simplifycfg.run);
      ("dce", Dce.run ~semantics:`Ub);
    ]
    m

(** Safe-semantics optimization (the JIT tier of Safe Sulong). *)
let safe_jit (m : Irmod.t) : int =
  fixpoint
    [
      ("fold", Fold.run);
      ("mem2reg", Mem2reg.run);
      ("fold", Fold.run);
      ("dce", Dce.run ~semantics:`Safe);
      ("simplifycfg", Simplifycfg.run);
    ]
    m

(** Native code generation folding: every native pipeline, every level. *)
let backend (m : Irmod.t) : bool = timed "backendfold" Backendfold.run m

(** Compile [m] for a native engine at [level] (mutates [m]). *)
let compile_native ~(level : level) (m : Irmod.t) : unit =
  (match level with O0 -> () | O3 -> ignore (o3 m));
  ignore (backend m);
  timed "verify" Verify.verify m

(** Compile [m] for Safe Sulong: nothing — the interpreter executes the
    front-end output; [safe_jit] only models what the dynamic compiler
    would do for the cost model. *)
let compile_sulong (_m : Irmod.t) : unit = ()
