(** Dead code elimination.

    The [semantics] parameter is the crux of paper P2: under [`Ub]
    (Clang-style) semantics an unused load, or a store to memory that is
    provably never read again, has no *defined* effect — even when it
    would trap at run time — so the compiler may delete it, and the bug
    with it.  Under [`Safe] (Graal-on-Safe-Sulong) semantics every memory
    access is an observable event (it can raise a run-time error), so
    only genuinely pure dead instructions may go. *)

let run_func ~(semantics : [ `Ub | `Safe ]) (f : Irfunc.t) : bool =
  let changed = ref false in
  let removable (i : Instr.instr) =
    match i with
    | Instr.Load _ -> semantics = `Ub
    | Instr.Alloca _ | Instr.Gep _ | Instr.Binop _ | Instr.Icmp _
    | Instr.Fcmp _ | Instr.Cast _ | Instr.Select _ | Instr.Phi _ ->
      true
    | Instr.Store _ | Instr.Call _ | Instr.Sancheck _ | Instr.Srcloc _ -> false
  in
  let pass () =
    (* Count uses of each register across instructions and terminators. *)
    let uses = Hashtbl.create 64 in
    let count v =
      match v with
      | Instr.Reg r ->
        Hashtbl.replace uses r (1 + Option.value (Hashtbl.find_opt uses r) ~default:0)
      | _ -> ()
    in
    List.iter
      (fun (b : Irfunc.block) ->
        List.iter (fun i -> List.iter count (Instr.uses_of i)) b.Irfunc.instrs;
        List.iter count (Instr.term_uses b.Irfunc.term))
      f.Irfunc.blocks;
    let dead i =
      match Instr.def_of i with
      | Some r when removable i ->
        Option.value (Hashtbl.find_opt uses r) ~default:0 = 0
      | _ -> false
    in
    let any = ref false in
    List.iter
      (fun (b : Irfunc.block) ->
        let kept = List.filter (fun i -> not (dead i)) b.Irfunc.instrs in
        if List.length kept <> List.length b.Irfunc.instrs then begin
          any := true;
          b.Irfunc.instrs <- kept
        end)
      f.Irfunc.blocks;
    !any
  in
  while pass () do
    changed := true
  done;
  !changed

let run ~semantics (m : Irmod.t) : bool =
  List.fold_left (fun acc f -> run_func ~semantics f || acc) false m.Irmod.funcs
