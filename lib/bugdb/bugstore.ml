(** Persistent, deduplicated store of campaign-convicted bugs.

    A long differential-testing campaign convicts the same underlying
    bug over and over: hundreds of seeds hit one bad fold.  The store
    keys every divergence on its *provenance signature* — error kind ×
    faulting [file:line:col] (from the managed bug report) × the bitset
    of engine configurations that disagreed — and keeps one entry per
    signature: the first seed that hit it, the smallest reproducer seen
    (the shrunk program when shrinking was on), and a hit count.

    Persistence is a JSON array on disk ([save]/[load]); [load] of a
    missing file is an empty store, so a campaign can always
    read-modify-write its `--bugdb` file.  The classifier database
    synthesis next door ([Entry]/[Classify]/[Gen]) models the paper's
    CVE/ExploitDB study; this module is the store those campaigns feed. *)

type entry = {
  be_key : string;     (** rendered signature, the dedup key *)
  be_kind : string;    (** outcome keys joined, e.g. "detected:oob|finished:0" *)
  be_loc : string;     (** faulting file:line:col, "" when none was reported *)
  be_configs : int;    (** bitset of disagreeing oracle configurations *)
  be_first_seed : int; (** first seed that produced this signature *)
  be_count : int;      (** total divergences folded into this entry *)
  be_mismatch : string;
  be_repro : string;   (** smallest reproducer source seen so far *)
}

type t = (string, entry) Hashtbl.t

let create () : t = Hashtbl.create 16

let entries (t : t) : entry list =
  Hashtbl.fold (fun _ e acc -> e :: acc) t []
  |> List.sort (fun a b -> compare a.be_first_seed b.be_first_seed)

let size (t : t) : int = Hashtbl.length t

(** Fold one divergence in; returns [`New] the first time a signature is
    seen and [`Dup] after.  The entry keeps the *earliest* seed and the
    *shortest* reproducer across all hits, so resuming a campaign (which
    replays ledger entries in chunk order) converges to the same store
    as an uninterrupted run. *)
let record (t : t) ~(key : string) ~(kind : string) ~(loc : string)
    ~(configs : int) ~(seed : int) ~(mismatch : string) ~(repro : string) :
    [ `New | `Dup ] =
  match Hashtbl.find_opt t key with
  | None ->
    Hashtbl.replace t key
      {
        be_key = key;
        be_kind = kind;
        be_loc = loc;
        be_configs = configs;
        be_first_seed = seed;
        be_count = 1;
        be_mismatch = mismatch;
        be_repro = repro;
      };
    `New
  | Some e ->
    let first_seed = min e.be_first_seed seed in
    let mismatch, repro =
      if seed < e.be_first_seed then (mismatch, repro)
      else (e.be_mismatch, e.be_repro)
    in
    let repro =
      if String.length repro <= String.length e.be_repro then repro
      else e.be_repro
    in
    Hashtbl.replace t key
      { e with be_first_seed = first_seed; be_count = e.be_count + 1;
        be_mismatch = mismatch; be_repro = repro };
    `Dup

(* ------------------------------------------------------------------ *)
(* JSON persistence                                                    *)
(* ------------------------------------------------------------------ *)

let entry_json (e : entry) : string =
  let esc = Metrics.json_escape in
  Printf.sprintf
    "  {\"key\": \"%s\", \"kind\": \"%s\", \"loc\": \"%s\", \"configs\": %d, \
     \"first_seed\": %d, \"count\": %d, \"mismatch\": \"%s\", \"repro\": \
     \"%s\"}"
    (esc e.be_key) (esc e.be_kind) (esc e.be_loc) e.be_configs e.be_first_seed
    e.be_count (esc e.be_mismatch) (esc e.be_repro)

let save (t : t) ~(file : string) : unit =
  let oc = open_out_bin file in
  output_string oc "[\n";
  List.iteri
    (fun i e ->
      if i > 0 then output_string oc ",\n";
      output_string oc (entry_json e))
    (entries t);
  output_string oc "\n]\n";
  close_out oc

exception Malformed of string

let entry_of_json (j : Trace.json) : entry =
  match j with
  | Trace.Jobj fields ->
    let str k =
      match List.assoc_opt k fields with
      | Some (Trace.Jstr s) -> s
      | _ -> raise (Malformed (Printf.sprintf "missing string %S" k))
    in
    let num k =
      match List.assoc_opt k fields with
      | Some (Trace.Jnum v) -> int_of_float v
      | _ -> raise (Malformed (Printf.sprintf "missing number %S" k))
    in
    {
      be_key = str "key";
      be_kind = str "kind";
      be_loc = str "loc";
      be_configs = num "configs";
      be_first_seed = num "first_seed";
      be_count = num "count";
      be_mismatch = str "mismatch";
      be_repro = str "repro";
    }
  | _ -> raise (Malformed "entry is not an object")

(** Load a store; a missing file is an empty store, a malformed one
    raises [Malformed] (better to stop than to silently forget every
    known bug and re-report them all as new). *)
let load ~(file : string) : t =
  let t = create () in
  if Sys.file_exists file then begin
    let ic = open_in_bin file in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Trace.parse_json s with
    | Trace.Jarr es ->
      List.iter
        (fun j ->
          let e = entry_of_json j in
          Hashtbl.replace t e.be_key e)
        es
    | _ -> raise (Malformed (file ^ ": top level is not an array"))
    | exception Trace.Bad msg -> raise (Malformed (file ^ ": " ^ msg))
  end;
  t
