(** The user-facing tool: run a C program under Safe Sulong or one of the
    baseline engines, inspect its IR, run the bug corpus, or regenerate
    the paper's experiments.

      sulong run file.c --engine sulong
      sulong run file.c --engine asan -O3 --arg foo --input "42"
      sulong ir file.c -O3
      sulong corpus --id ST-W05
      sulong report fig16
      sulong difftest --seeds 500 --shrink --json BENCH_difftest.json *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------------- run ---------------- *)

let engine_of_string name level =
  let lv = if level = 3 then Pipeline.O3 else Pipeline.O0 in
  match name with
  | "sulong" | "safe-sulong" -> Ok Engine.Safe_sulong
  | "clang" | "native" -> Ok (Engine.Clang lv)
  | "asan" -> Ok (Engine.Asan lv)
  | "valgrind" | "memcheck" -> Ok (Engine.Valgrind lv)
  | other -> Error (Printf.sprintf "unknown engine %S" other)

let do_run file engine level args input_text detect_uninit detect_leaks
    trace_calls =
  let src = read_file file in
  match engine_of_string engine level with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok tool -> begin
    let argv = file :: args in
    try
      (* Leak details need the managed run result, so special-case the
         Safe Sulong engine when leak reporting is requested. *)
      if (detect_leaks || trace_calls) && tool = Engine.Safe_sulong then begin
        let m = Loader.load_program src in
        let st =
          Interp.create ~detect_uninit ~trace:trace_calls ~input:input_text m
        in
        let r = Interp.run ~argv st in
        if trace_calls then prerr_string r.Interp.trace_output;
        print_string r.Interp.output;
        (match r.Interp.error with
        | Some (cat, msg) ->
          Printf.eprintf "[Safe Sulong] ERROR DETECTED (%s): %s\n"
            (Merror.category_name cat) msg
        | None -> ());
        if detect_leaks then begin
          if r.Interp.leaks > 0 then begin
            Printf.eprintf "[Safe Sulong] %d memory leak(s):\n" r.Interp.leaks;
            List.iter (Printf.eprintf "  %s\n") r.Interp.leak_details
          end
          else Printf.eprintf "[Safe Sulong] no memory leaks\n"
        end;
        if r.Interp.error <> None then 1 else r.Interp.exit_code
      end
      else begin
        let r = Engine.run ~argv ~input:input_text ~detect_uninit tool src in
        print_string r.Engine.output;
        match r.Engine.outcome with
        | Outcome.Finished code ->
          Printf.eprintf "[%s] exited with %d (%d operations)\n"
            (Engine.tool_name tool) code r.Engine.steps;
          code
        | Outcome.Detected { tool = t; kind; message } ->
          Printf.eprintf "[%s] ERROR DETECTED (%s): %s\n" t kind message;
          1
        | Outcome.Crashed what ->
          Printf.eprintf "[%s] program crashed: %s\n" (Engine.tool_name tool)
            what;
          139
        | Outcome.Timeout ->
          Printf.eprintf "[%s] step limit exceeded\n" (Engine.tool_name tool);
          124
      end
    with
    | Diag.Error (pos, msg) ->
      Printf.eprintf "%s: %s\n" file (Diag.to_string pos msg);
      2
    | Lower.Unsupported (pos, msg) ->
      Printf.eprintf "%s: %d:%d: unsupported: %s\n" file pos.Token.line
        pos.Token.col msg;
      2
  end

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"C source file")

let engine_arg =
  Arg.(
    value
    & opt string "sulong"
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:"Execution engine: sulong, clang, asan, or valgrind.")

let level_arg =
  Arg.(
    value & opt int 0
    & info [ "O" ] ~docv:"N" ~doc:"Optimization level (0 or 3).")

let args_arg =
  Arg.(
    value & opt_all string []
    & info [ "a"; "arg" ] ~docv:"ARG" ~doc:"Program argument (repeatable).")

let input_arg =
  Arg.(
    value & opt string ""
    & info [ "i"; "input" ] ~docv:"TEXT" ~doc:"Standard input for the program.")

let uninit_flag =
  Arg.(
    value & flag
    & info [ "detect-uninit" ]
        ~doc:
          "Report reads of uninitialized memory (Safe Sulong only; the \
           paper's future-work extension).")

let leaks_flag =
  Arg.(
    value & flag
    & info [ "detect-leaks" ]
        ~doc:"Report heap objects never freed (Safe Sulong only).")

let trace_flag =
  Arg.(
    value & flag
    & info [ "trace-calls" ]
        ~doc:"Print every function entry/exit to stderr (Safe Sulong only).")

let run_cmd =
  let doc = "compile and execute a C file under a bug-finding engine" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const do_run $ file_arg $ engine_arg $ level_arg $ args_arg $ input_arg
      $ uninit_flag $ leaks_flag $ trace_flag)

(* ---------------- ir ---------------- *)

let do_ir file level with_libc =
  let src = read_file file in
  try
    let m =
      if with_libc then Loader.load_program src else Loader.compile_user src
    in
    if level = 3 then ignore (Pipeline.o3 m);
    print_string (Irprint.module_to_string m);
    0
  with Diag.Error (pos, msg) ->
    Printf.eprintf "%s: %s\n" file (Diag.to_string pos msg);
    2

let libc_flag =
  Arg.(value & flag & info [ "with-libc" ] ~doc:"Link the managed libc in.")

let ir_cmd =
  let doc = "print the IR the front end (and optionally -O3) produces" in
  Cmd.v (Cmd.info "ir" ~doc)
    Term.(const do_ir $ file_arg $ level_arg $ libc_flag)

(* ---------------- run-ir ---------------- *)

let do_run_ir file args input_text =
  try
    let m = Irparse.parse (read_file file) in
    Verify.verify m;
    (* link the managed libc so textual IR can call printf & friends *)
    let m = Irmod.link m (Loader.libc_module ()) in
    let st = Interp.create ~input:input_text m in
    let r = Interp.run ~argv:(file :: args) st in
    print_string r.Interp.output;
    (match r.Interp.error with
    | Some (cat, msg) ->
      Printf.eprintf "[Safe Sulong] ERROR DETECTED (%s): %s\n"
        (Merror.category_name cat) msg
    | None -> ());
    r.Interp.exit_code
  with
  | Irparse.Parse_error (line, msg) ->
    Printf.eprintf "%s:%d: %s\n" file line msg;
    2
  | Verify.Invalid msg ->
    Printf.eprintf "%s: invalid IR: %s\n" file msg;
    2

let ir_file_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Textual IR file (as printed by 'sulong ir')")

let run_ir_cmd =
  let doc = "parse a textual IR file and execute it under Safe Sulong" in
  Cmd.v (Cmd.info "run-ir" ~doc)
    Term.(const do_run_ir $ ir_file_arg $ args_arg $ input_arg)

(* ---------------- compare ---------------- *)

let do_compare file args input_text =
  let src = read_file file in
  let tools =
    [
      Engine.Safe_sulong; Engine.Clang Pipeline.O0; Engine.Clang Pipeline.O3;
      Engine.Asan Pipeline.O0; Engine.Asan Pipeline.O3;
      Engine.Valgrind Pipeline.O0; Engine.Valgrind Pipeline.O3;
    ]
  in
  try
    List.iter
      (fun tool ->
        let r = Engine.run ~argv:(file :: args) ~input:input_text tool src in
        Printf.printf "%-14s %s\n" (Engine.tool_name tool)
          (Outcome.to_string r.Engine.outcome))
      tools;
    0
  with Diag.Error (pos, msg) ->
    Printf.eprintf "%s: %s\n" file (Diag.to_string pos msg);
    2

let compare_cmd =
  let doc = "run a C file under every tool and print the detection matrix" in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const do_compare $ file_arg $ args_arg $ input_arg)

(* ---------------- corpus ---------------- *)

let do_corpus id_opt =
  match id_opt with
  | None ->
    List.iter
      (fun (p : Groundtruth.program) ->
        Printf.printf "%-8s %-20s %s\n" p.Groundtruth.id p.Groundtruth.project
          p.Groundtruth.description)
      Corpus.all;
    0
  | Some id -> begin
    match Corpus.find id with
    | None ->
      Printf.eprintf "no corpus program %S\n" id;
      2
    | Some p ->
      Printf.printf "%s (%s): %s\n\n%s\n" p.Groundtruth.id p.Groundtruth.project
        p.Groundtruth.description p.Groundtruth.source;
      let r = Effectiveness.run_program p in
      List.iter
        (fun (tool, outcome) ->
          Printf.printf "  %-14s %s\n" (Engine.tool_name tool)
            (Outcome.short outcome))
        r.Effectiveness.results;
      0
  end

let id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "id" ] ~docv:"ID" ~doc:"Show and run one corpus program.")

let corpus_cmd =
  let doc = "list the 68-bug corpus, or run one bug under every tool" in
  Cmd.v (Cmd.info "corpus" ~doc) Term.(const do_corpus $ id_arg)

(* ---------------- report ---------------- *)

let do_report which =
  (match which with
  | "fig1" -> Report.fig1 ()
  | "fig2" -> Report.fig2 ()
  | "tab1" | "tab2" | "cmp" | "effectiveness" -> Report.effectiveness ()
  | "startup" -> Report.startup ()
  | "fig15" -> Report.fig15 ()
  | "fig16" -> Report.fig16 ()
  | "ablations" -> Report.ablations ()
  | "all" | _ -> Report.run_all ());
  0

let which_arg =
  Arg.(
    value & pos 0 string "all"
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "fig1, fig2, tab1, tab2, cmp, startup, fig15, fig16, ablations or \
           all.")

let report_cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "report" ~doc) Term.(const do_report $ which_arg)

(* ---------------- difftest ---------------- *)

let do_difftest seeds seed_start shrink json_file =
  Printf.printf
    "difftest: %d seed(s) from %d across %d configurations%s\n%!" seeds
    seed_start
    (List.length Oracle.configs)
    (if shrink then " (shrinking divergences)" else "");
  (* The checked-in reproducers run first: a folding regression makes
     the campaign fail before any seed is spent. *)
  let regression_failures =
    List.filter_map
      (fun reg ->
        match Difftest.check_regression reg with
        | Ok () -> None
        | Error msg -> Some msg)
      Difftest.regressions
  in
  List.iter (Printf.printf "REGRESSION %s\n") regression_failures;
  let progress i =
    if i mod 100 = 0 then Printf.printf "  ...%d seeds checked\n%!" i
  in
  let r = Difftest.run ~shrink ~progress ~seed_start ~seeds () in
  List.iter
    (fun (d : Difftest.divergence) ->
      Printf.printf "\nDIVERGENCE seed %d: %s\n%s" d.Difftest.dv_seed
        d.Difftest.dv_mismatch d.Difftest.dv_source;
      match d.Difftest.dv_reduced with
      | Some reduced ->
        Printf.printf "reduced (%d oracle calls):\n%s" d.Difftest.dv_oracle_calls
          reduced
      | None -> ())
    r.Difftest.rp_divergences;
  let n_div = List.length r.Difftest.rp_divergences in
  Printf.printf
    "difftest: %d agree, %d rejected, %d divergence(s) in %.1fs (%.1f seeds/s)\n"
    r.Difftest.rp_agree r.Difftest.rp_reject n_div r.Difftest.rp_elapsed_s
    (float_of_int seeds /. (r.Difftest.rp_elapsed_s +. 1e-9));
  (match json_file with
  | Some file ->
    Difftest.append_row ~file (Difftest.report_row r);
    Printf.printf "appended row to %s\n" file
  | None -> ());
  if n_div > 0 || regression_failures <> [] then 1 else 0

let seeds_arg =
  Arg.(
    value & opt int 500
    & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to test.")

let seed_start_arg =
  Arg.(
    value & opt int 0
    & info [ "seed-start" ] ~docv:"K" ~doc:"First seed of the range.")

let shrink_arg =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:"Greedily reduce divergent programs before reporting them.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Append a JSON result row (seeds/sec, divergences) to $(docv).")

let difftest_cmd =
  let doc =
    "differential testing: generated well-defined programs must behave \
     identically under every engine configuration"
  in
  Cmd.v (Cmd.info "difftest" ~doc)
    Term.(
      const do_difftest $ seeds_arg $ seed_start_arg $ shrink_arg $ json_arg)

(* ---------------- main ---------------- *)

let () =
  let doc =
    "Safe Sulong reproduction: find C memory errors by abstracting from the \
     native execution model"
  in
  let info = Cmd.info "sulong" ~version:"1.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
       [ run_cmd; ir_cmd; run_ir_cmd; compare_cmd; corpus_cmd; report_cmd;
         difftest_cmd ]))
