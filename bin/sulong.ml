(** The user-facing tool: run a C program under Safe Sulong or one of the
    baseline engines, inspect its IR, run the bug corpus, or regenerate
    the paper's experiments.

      sulong run file.c --engine sulong
      sulong run file.c --engine asan -O3 --arg foo --input "42"
      sulong ir file.c -O3
      sulong corpus --id ST-W05
      sulong report fig16
      sulong difftest --seeds 500 --shrink --json BENCH_difftest.json *)

open Cmdliner

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---------------- run ---------------- *)

let engine_of_string name level =
  let lv = if level = 3 then Pipeline.O3 else Pipeline.O0 in
  match name with
  | "sulong" | "safe-sulong" -> Ok Engine.Safe_sulong
  | "clang" | "native" -> Ok (Engine.Clang lv)
  | "asan" -> Ok (Engine.Asan lv)
  | "valgrind" | "memcheck" -> Ok (Engine.Valgrind lv)
  | other -> Error (Printf.sprintf "unknown engine %S" other)

(* Observability session around a subcommand: enable the metric
   registry and/or install a trace sink up front, dump both at the end.
   Metrics go to stderr so program output on stdout stays clean. *)
let obs_begin ~metrics ~trace_file =
  if metrics <> None then Metrics.enabled := true;
  if trace_file <> None then Trace.start ()

let obs_end ~metrics ~trace_file (code : int) : int =
  (match trace_file with
  | Some path ->
    let json = Trace.finish () in
    let oc = open_out_bin path in
    output_string oc json;
    close_out oc;
    (match Trace.validate json with
    | Ok () -> Printf.eprintf "trace written to %s\n" path
    | Error e ->
      Printf.eprintf "warning: trace %s failed validation: %s\n" path e)
  | None -> ());
  (match metrics with
  | Some "json" -> prerr_endline (Metrics.to_json ())
  | Some _ -> prerr_string (Metrics.to_text ())
  | None -> ());
  code

(* Render the guest profile in the requested format and deliver it to
   [--profile-out FILE] or stderr (so program output on stdout stays
   clean, like --metrics). *)
let emit_profile (p : Profile.t) ~(format : string)
    ~(out : string option) : unit =
  let text =
    match format with
    | "folded" -> Profile.folded p
    | "json" -> Profile.to_json p ^ "\n"
    | _ -> Profile.top_table p
  in
  match out with
  | Some path ->
    let oc = open_out_bin path in
    output_string oc text;
    close_out oc;
    Printf.eprintf "profile written to %s\n" path
  | None -> prerr_string text

let do_run file engine level tiered args input_text detect_uninit detect_leaks
    trace_calls profile profile_out metrics trace_file =
  let src = read_file file in
  match engine_of_string engine level with
  | Error msg ->
    prerr_endline msg;
    2
  | Ok _ when
      (match profile with
      | Some f -> f <> "top" && f <> "folded" && f <> "json"
      | None -> false) ->
    Printf.eprintf "run: --profile takes top, folded or json\n";
    2
  | Ok tool -> begin
    obs_begin ~metrics ~trace_file;
    let argv = file :: args in
    let code =
      try
        (* The managed engine runs through the interpreter directly:
           provenance reports, leak details and call traces all need the
           full managed run result. *)
        if tool = Engine.Safe_sulong then begin
          let m = Loader.load_program ~file src in
          let prof =
            match profile with
            | Some _ -> Some (Profile.create ())
            | None -> None
          in
          let st =
            Interp.create
              ?tier:(if tiered then Some (Tier.controller ()) else None)
              ?profile:prof ~detect_uninit ~trace:trace_calls
              ~input:input_text m
          in
          let r = Interp.run ~argv st in
          if trace_calls then prerr_string r.Interp.trace_output;
          (match (prof, profile) with
          | Some p, Some format -> emit_profile p ~format ~out:profile_out
          | _ -> ());
          print_string r.Interp.output;
          (match (r.Interp.error, r.Interp.report) with
          | Some _, Some rep -> prerr_string (Bugreport.render rep)
          | Some (cat, msg), None ->
            Printf.eprintf "[Safe Sulong] ERROR DETECTED (%s): %s\n"
              (Merror.category_name cat) msg
          | None, _ -> ());
          if detect_leaks then begin
            if r.Interp.leaks > 0 then begin
              Printf.eprintf "[Safe Sulong] %d memory leak(s):\n" r.Interp.leaks;
              List.iter (Printf.eprintf "  %s\n") r.Interp.leak_details
            end
            else Printf.eprintf "[Safe Sulong] no memory leaks\n"
          end;
          if r.Interp.timed_out then begin
            Printf.eprintf "[Safe Sulong] step limit exceeded\n";
            124
          end
          else if r.Interp.error <> None then 1
          else r.Interp.exit_code
        end
        else begin
          if profile <> None then
            Printf.eprintf "run: --profile is Safe Sulong only; ignored\n";
          let r = Engine.run ~argv ~input:input_text ~detect_uninit tool src in
          print_string r.Engine.output;
          match r.Engine.outcome with
          | Outcome.Finished code ->
            Printf.eprintf "[%s] exited with %d (%d operations)\n"
              (Engine.tool_name tool) code r.Engine.steps;
            code
          | Outcome.Detected { tool = t; kind; message } ->
            Printf.eprintf "[%s] ERROR DETECTED (%s): %s\n" t kind message;
            1
          | Outcome.Crashed what ->
            Printf.eprintf "[%s] program crashed: %s\n" (Engine.tool_name tool)
              what;
            139
          | Outcome.Timeout ->
            Printf.eprintf "[%s] step limit exceeded\n" (Engine.tool_name tool);
            124
        end
      with
      | Diag.Error (pos, msg) ->
        Printf.eprintf "%s: %s\n" file (Diag.to_string pos msg);
        2
      | Lower.Unsupported (pos, msg) ->
        Printf.eprintf "%s: %d:%d: unsupported: %s\n" file pos.Token.line
          pos.Token.col msg;
        2
    in
    obs_end ~metrics ~trace_file code
  end

let file_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE" ~doc:"C source file")

let engine_arg =
  Arg.(
    value
    & opt string "sulong"
    & info [ "e"; "engine" ] ~docv:"ENGINE"
        ~doc:"Execution engine: sulong, clang, asan, or valgrind.")

let level_arg =
  Arg.(
    value & opt int 0
    & info [ "O" ] ~docv:"N" ~doc:"Optimization level (0 or 3).")

let tier_flag =
  Arg.(
    value & flag
    & info [ "tier" ]
        ~doc:
          "Run under the two-tier engine (Safe Sulong only): hot functions \
           are closure-compiled after crossing the hotness threshold, and \
           deoptimize back to the interpreter on any managed error so bug \
           reports are identical to the interpreter's.")

let args_arg =
  Arg.(
    value & opt_all string []
    & info [ "a"; "arg" ] ~docv:"ARG" ~doc:"Program argument (repeatable).")

let input_arg =
  Arg.(
    value & opt string ""
    & info [ "i"; "input" ] ~docv:"TEXT" ~doc:"Standard input for the program.")

let uninit_flag =
  Arg.(
    value & flag
    & info [ "detect-uninit" ]
        ~doc:
          "Report reads of uninitialized memory (Safe Sulong only; the \
           paper's future-work extension).")

let leaks_flag =
  Arg.(
    value & flag
    & info [ "detect-leaks" ]
        ~doc:"Report heap objects never freed (Safe Sulong only).")

let trace_flag =
  Arg.(
    value & flag
    & info [ "trace-calls" ]
        ~doc:"Print every function entry/exit to stderr (Safe Sulong only).")

let metrics_arg =
  Arg.(
    value
    & opt ~vopt:(Some "text") (some string) None
    & info [ "metrics" ] ~docv:"FORMAT"
        ~doc:
          "Collect pipeline and runtime metrics and print them to stderr \
           at exit; FORMAT is text (default) or json.")

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON timeline of the phases (parse, \
           sema, lower, prepare, link, execute, JIT compiles) to $(docv); \
           load it via chrome://tracing or Perfetto.")

let profile_arg =
  Arg.(
    value
    & opt ~vopt:(Some "top") (some string) None
    & info [ "profile" ] ~docv:"FORMAT"
        ~doc:
          "Profile the guest program (Safe Sulong only): exact per-function \
           and per-block attribution of managed steps and wall time, \
           identical across the interpreter and the closure-compiled tier. \
           FORMAT is top (default; a top-N table), folded \
           (flamegraph-compatible folded stacks for flamegraph.pl or \
           speedscope), or json.")

let profile_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "profile-out" ] ~docv:"FILE"
        ~doc:"Write the profile to $(docv) instead of stderr.")

let run_cmd =
  let doc = "compile and execute a C file under a bug-finding engine" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const do_run $ file_arg $ engine_arg $ level_arg $ tier_flag $ args_arg
      $ input_arg $ uninit_flag $ leaks_flag $ trace_flag $ profile_arg
      $ profile_out_arg $ metrics_arg $ trace_file_arg)

(* ---------------- ir ---------------- *)

let do_ir file level with_libc =
  let src = read_file file in
  try
    let m =
      if with_libc then Loader.load_program src else Loader.compile_user src
    in
    if level = 3 then ignore (Pipeline.o3 m);
    print_string (Irprint.module_to_string m);
    0
  with Diag.Error (pos, msg) ->
    Printf.eprintf "%s: %s\n" file (Diag.to_string pos msg);
    2

let libc_flag =
  Arg.(value & flag & info [ "with-libc" ] ~doc:"Link the managed libc in.")

let ir_cmd =
  let doc = "print the IR the front end (and optionally -O3) produces" in
  Cmd.v (Cmd.info "ir" ~doc)
    Term.(const do_ir $ file_arg $ level_arg $ libc_flag)

(* ---------------- run-ir ---------------- *)

let do_run_ir file args input_text =
  try
    let m = Irparse.parse (read_file file) in
    Verify.verify m;
    (* link the managed libc so textual IR can call printf & friends *)
    let m = Irmod.link m (Loader.libc_module ()) in
    let st = Interp.create ~input:input_text m in
    let r = Interp.run ~argv:(file :: args) st in
    print_string r.Interp.output;
    (match r.Interp.error with
    | Some (cat, msg) ->
      Printf.eprintf "[Safe Sulong] ERROR DETECTED (%s): %s\n"
        (Merror.category_name cat) msg
    | None -> ());
    r.Interp.exit_code
  with
  | Irparse.Parse_error (line, msg) ->
    Printf.eprintf "%s:%d: %s\n" file line msg;
    2
  | Verify.Invalid msg ->
    Printf.eprintf "%s: invalid IR: %s\n" file msg;
    2

let ir_file_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"FILE" ~doc:"Textual IR file (as printed by 'sulong ir')")

let run_ir_cmd =
  let doc = "parse a textual IR file and execute it under Safe Sulong" in
  Cmd.v (Cmd.info "run-ir" ~doc)
    Term.(const do_run_ir $ ir_file_arg $ args_arg $ input_arg)

(* ---------------- compare ---------------- *)

let do_compare file args input_text =
  let src = read_file file in
  let tools =
    [
      Engine.Safe_sulong; Engine.Clang Pipeline.O0; Engine.Clang Pipeline.O3;
      Engine.Asan Pipeline.O0; Engine.Asan Pipeline.O3;
      Engine.Valgrind Pipeline.O0; Engine.Valgrind Pipeline.O3;
    ]
  in
  try
    List.iter
      (fun tool ->
        let r = Engine.run ~argv:(file :: args) ~input:input_text tool src in
        Printf.printf "%-14s %s\n" (Engine.tool_name tool)
          (Outcome.to_string r.Engine.outcome))
      tools;
    0
  with Diag.Error (pos, msg) ->
    Printf.eprintf "%s: %s\n" file (Diag.to_string pos msg);
    2

let compare_cmd =
  let doc = "run a C file under every tool and print the detection matrix" in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const do_compare $ file_arg $ args_arg $ input_arg)

(* ---------------- corpus ---------------- *)

let do_corpus id_opt =
  match id_opt with
  | None ->
    List.iter
      (fun (p : Groundtruth.program) ->
        Printf.printf "%-8s %-20s %s\n" p.Groundtruth.id p.Groundtruth.project
          p.Groundtruth.description)
      Corpus.all;
    0
  | Some id -> begin
    match Corpus.find id with
    | None ->
      Printf.eprintf "no corpus program %S\n" id;
      2
    | Some p ->
      Printf.printf "%s (%s): %s\n\n%s\n" p.Groundtruth.id p.Groundtruth.project
        p.Groundtruth.description p.Groundtruth.source;
      let r = Effectiveness.run_program p in
      List.iter
        (fun (tool, outcome) ->
          Printf.printf "  %-14s %s\n" (Engine.tool_name tool)
            (Outcome.short outcome))
        r.Effectiveness.results;
      0
  end

let id_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "id" ] ~docv:"ID" ~doc:"Show and run one corpus program.")

let corpus_cmd =
  let doc = "list the 68-bug corpus, or run one bug under every tool" in
  Cmd.v (Cmd.info "corpus" ~doc) Term.(const do_corpus $ id_arg)

(* ---------------- report ---------------- *)

let do_report which =
  (match which with
  | "fig1" -> Report.fig1 ()
  | "fig2" -> Report.fig2 ()
  | "tab1" | "tab2" | "cmp" | "effectiveness" -> Report.effectiveness ()
  | "startup" -> Report.startup ()
  | "fig15" -> Report.fig15 ()
  | "fig16" -> Report.fig16 ()
  | "ablations" -> Report.ablations ()
  | "all" | _ -> Report.run_all ());
  0

let which_arg =
  Arg.(
    value & pos 0 string "all"
    & info [] ~docv:"EXPERIMENT"
        ~doc:
          "fig1, fig2, tab1, tab2, cmp, startup, fig15, fig16, ablations or \
           all.")

let report_cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "report" ~doc) Term.(const do_report $ which_arg)

(* ---------------- difftest ---------------- *)

let do_difftest seeds seed_start features_str shrink json_file jobs chunk
    ledger resume_file bugdb corpus metrics trace_file =
  obs_begin ~metrics ~trace_file;
  let features =
    try Cgen.features_of_string features_str
    with Invalid_argument msg ->
      prerr_endline ("difftest: " ^ msg);
      exit 2
  in
  (* The checked-in reproducers run first — plus any exported corpus
     directory — so a regression makes the campaign fail before any
     seed is spent. *)
  let corpus_regressions =
    match corpus with
    | None -> []
    | Some dir -> (
      match Difftest.load_corpus ~dir with
      | [] ->
        prerr_endline ("difftest: --corpus: no reproducers in " ^ dir);
        exit 2
      | rs -> rs
      | exception Invalid_argument msg ->
        prerr_endline ("difftest: --corpus: " ^ msg);
        exit 2)
  in
  let regression_failures =
    List.filter_map
      (fun reg ->
        match Difftest.check_regression reg with
        | Ok () -> None
        | Error msg -> Some msg)
      (Difftest.regressions @ corpus_regressions)
  in
  List.iter (Printf.printf "REGRESSION %s\n") regression_failures;
  (* Per-chunk completions stream back from the workers; print whenever
     another century of seeds is crossed (chunks rarely land on
     multiples of 100). *)
  let last_printed = ref 0 in
  let progress i =
    if i / 100 > !last_printed / 100 || i = seeds then begin
      last_printed := i;
      Printf.printf "  ...%d seeds checked\n%!" i
    end
  in
  let campaign_needed = jobs > 1 || ledger <> None || resume_file <> None in
  let outcome =
    match resume_file with
    | Some file -> (
      match Campaign.resume ~jobs ?bugdb ~progress ~ledger:file () with
      | o ->
        Printf.printf
          "difftest: resumed %s: %d seed(s) already in the ledger\n%!" file
          o.Campaign.co_resumed_seeds;
        Some o
      | exception Campaign.Ledger_error msg ->
        prerr_endline ("difftest: --resume: " ^ msg);
        exit 2)
    | None ->
      Printf.printf
        "difftest: %d seed(s) from %d across %d configurations [features \
         %s]%s%s\n%!"
        seeds seed_start
        (List.length Oracle.configs)
        (Cgen.features_name features)
        (if shrink then " (shrinking divergences)" else "")
        (if jobs > 1 then Printf.sprintf " [%d jobs, chunks of %d]" jobs chunk
         else "");
      if campaign_needed then
        Some
          (Campaign.run ~features ~shrink ~jobs ~chunk ?ledger ?bugdb
             ~progress ~seed_start ~seeds ())
      else None
  in
  let r, deaths, interrupted =
    match outcome with
    | Some o ->
      (o.Campaign.co_report, o.Campaign.co_worker_deaths,
       o.Campaign.co_interrupted)
    | None ->
      (Difftest.run ~features ~shrink ~progress ~seed_start ~seeds (), 0, false)
  in
  List.iter
    (fun (d : Difftest.divergence) ->
      Printf.printf "\nDIVERGENCE seed %d: %s\n  signature: %s\n%s"
        d.Difftest.dv_seed d.Difftest.dv_mismatch
        (Difftest.signature_key d.Difftest.dv_sig)
        d.Difftest.dv_source;
      (match d.Difftest.dv_events with
      | [] -> ()
      | evs ->
        Printf.printf "  engine events at detection:\n";
        List.iter (Printf.printf "    %s\n") evs);
      match d.Difftest.dv_reduced with
      | Some reduced ->
        Printf.printf "reduced (%d oracle calls):\n%s" d.Difftest.dv_oracle_calls
          reduced
      | None -> ())
    r.Difftest.rp_divergences;
  let n_div = List.length r.Difftest.rp_divergences in
  Printf.printf
    "difftest: %d agree, %d rejected, %d divergence(s) in %.1fs (%.1f seeds/s)%s\n"
    r.Difftest.rp_agree r.Difftest.rp_reject n_div r.Difftest.rp_elapsed_s
    (float_of_int
       (r.Difftest.rp_agree + r.Difftest.rp_reject + n_div
       - (match outcome with
         | Some o -> o.Campaign.co_resumed_seeds
         | None -> 0))
    /. (r.Difftest.rp_elapsed_s +. 1e-9))
    (match outcome with
    | Some o when deaths > 0 ->
      Printf.sprintf " [%d worker death(s), %d chunk(s) requeued]" deaths
        o.Campaign.co_requeues
    | _ -> "");
  (match outcome with
  | Some o when Bugstore.size o.Campaign.co_bugs > 0 ->
    Printf.printf "unique bug signatures: %d (%d new)\n"
      (Bugstore.size o.Campaign.co_bugs)
      o.Campaign.co_new_bugs;
    List.iter
      (fun (e : Bugstore.entry) ->
        Printf.printf "  %-40s first seed %d, %d hit(s)\n" e.Bugstore.be_key
          e.Bugstore.be_first_seed e.Bugstore.be_count)
      (Bugstore.entries o.Campaign.co_bugs)
  | _ -> ());
  (* Per-seed cost lands in the ledger, so a --resume can rank the
     expensive seeds without rerunning anything. *)
  (match outcome with
  | Some o -> (
    match Campaign.slowest_seeds ~n:5 o.Campaign.co_chunks with
    | [] -> ()
    | slow ->
      Printf.printf "slowest seeds:\n";
      List.iter
        (fun (s : Difftest.seed_stat) ->
          Printf.printf "  seed %-8d %8.1f ms %14d managed steps\n"
            s.Difftest.ss_seed
            (s.Difftest.ss_elapsed_s *. 1e3)
            s.Difftest.ss_steps)
        slow)
  | None -> ());
  if interrupted then begin
    (match ledger with
    | Some file ->
      Printf.printf "interrupted; resume with: sulong difftest --resume %s\n"
        file
    | None ->
      print_endline
        "interrupted (no --ledger given, so the finished seeds are lost)");
    ignore (obs_end ~metrics ~trace_file 130);
    130
  end
  else begin
    (match json_file with
    | Some file ->
      Difftest.append_row ~file
        (Difftest.report_row ~jobs ~worker_deaths:deaths r);
      Printf.printf "appended row to %s\n" file
    | None -> ());
    obs_end ~metrics ~trace_file
      (if n_div > 0 || regression_failures <> [] then 1 else 0)
  end

let seeds_arg =
  Arg.(
    value & opt int 500
    & info [ "seeds" ] ~docv:"N" ~doc:"Number of seeds to test.")

let seed_start_arg =
  Arg.(
    value & opt int 0
    & info [ "seed-start" ] ~docv:"K" ~doc:"First seed of the range.")

let features_arg =
  Arg.(
    value & opt string "int,float,call,mem,ptr"
    & info [ "features" ] ~docv:"LIST"
        ~doc:
          "Generator feature set: a comma-separated subset of \
           int,float,call,mem,ptr (int is always on).")

let shrink_arg =
  Arg.(
    value & flag
    & info [ "shrink" ]
        ~doc:"Greedily reduce divergent programs before reporting them.")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:"Append a JSON result row (seeds/sec, divergences) to $(docv).")

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run the campaign on a pool of $(docv) forked workers fed from a \
           work-stealing chunk queue; dead workers are respawned and their \
           in-flight chunk is requeued, so no seed is lost.")

let chunk_arg =
  Arg.(
    value & opt int Campaign.default_chunk
    & info [ "chunk" ] ~docv:"N"
        ~doc:
          "Seeds per work-stealing chunk (the unit of scheduling, ledger \
           writes and loss-on-worker-death).")

let ledger_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "ledger" ] ~docv:"FILE"
        ~doc:
          "Write the campaign ledger to $(docv): a JSON-lines file with one \
           header line and one line per completed chunk, flushed as results \
           arrive, so an interrupted campaign is resumable with --resume.")

let resume_arg =
  Arg.(
    value
    & opt (some file) None
    & info [ "resume" ] ~docv:"LEDGER"
        ~doc:
          "Continue the interrupted campaign recorded in $(docv): campaign \
           parameters come from the ledger header, completed chunks are \
           skipped, and new completions append to the same file.")

let bugdb_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "bugdb" ] ~docv:"FILE"
        ~doc:
          "Persist deduplicated divergences to the JSON bug store $(docv) \
           (read-modify-write): one entry per provenance signature with the \
           first-seen seed and smallest reproducer.")

let corpus_dir_arg =
  Arg.(
    value
    & opt (some dir) None
    & info [ "corpus" ] ~docv:"DIR"
        ~doc:
          "Also run every exported reproducer in $(docv) (pairs of NAME.c \
           and NAME.expected, as written by `sulong bugdb export`) as \
           regressions before spending any seed.")

let difftest_cmd =
  let doc =
    "differential testing: generated well-defined programs must behave \
     identically under every engine configuration"
  in
  Cmd.v (Cmd.info "difftest" ~doc)
    Term.(
      const do_difftest $ seeds_arg $ seed_start_arg $ features_arg
      $ shrink_arg $ json_arg $ jobs_arg $ chunk_arg $ ledger_arg
      $ resume_arg $ bugdb_arg $ corpus_dir_arg $ metrics_arg
      $ trace_file_arg)

(* ---------------- bugdb ---------------- *)

(* `sulong bugdb export` promotes the smallest shrunk reproducer of
   every convicted signature in a campaign bug store into an on-disk
   regressions corpus: NAME.c plus NAME.expected, the format
   [Difftest.load_corpus] (and `difftest --corpus`) consumes.  Each
   reproducer re-runs through the full oracle first — an entry whose
   bug is still unfixed (the oracle still diverges) is reported and
   fails the export, so the corpus only ever contains programs with an
   agreed-upon expected output. *)

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' -> c
      | _ -> '-')
    s
  |> String.lowercase_ascii
  |> fun s ->
  (* collapse runs of '-' and trim to keep file names readable *)
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c <> '-' || (Buffer.length b > 0
                      && Buffer.nth b (Buffer.length b - 1) <> '-')
      then Buffer.add_char b c)
    s;
  let s = Buffer.contents b in
  let s = if String.length s > 40 then String.sub s 0 40 else s in
  match String.length s with
  | 0 -> "bug"
  | n when s.[n - 1] = '-' -> String.sub s 0 (n - 1)
  | _ -> s

let do_bugdb_export bugdb_file out_dir =
  let store =
    try Bugstore.load ~file:bugdb_file
    with Bugstore.Malformed msg ->
      prerr_endline ("bugdb export: " ^ msg);
      exit 2
  in
  match Bugstore.entries store with
  | [] ->
    Printf.printf "bugdb export: %s has no entries; nothing to export\n"
      bugdb_file;
    0
  | entries ->
    if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
    let unfixed = ref 0 in
    List.iter
      (fun (e : Bugstore.entry) ->
        let name =
          Printf.sprintf "seed%04d-%s" e.Bugstore.be_first_seed
            (slug e.Bugstore.be_kind)
        in
        match Oracle.check e.Bugstore.be_repro with
        | Oracle.Agree out ->
          let write file s =
            let oc = open_out_bin (Filename.concat out_dir file) in
            output_string oc s;
            close_out oc
          in
          write (name ^ ".c") e.Bugstore.be_repro;
          write (name ^ ".expected") out;
          Printf.printf "exported %-44s (%d hit(s), %d bytes)\n" name
            e.Bugstore.be_count
            (String.length e.Bugstore.be_repro)
        | Oracle.Reject why ->
          incr unfixed;
          Printf.printf "REJECTED %-44s %s\n" name why
        | Oracle.Diverge { mismatch; _ } ->
          incr unfixed;
          Printf.printf "UNFIXED  %-44s %s\n" name mismatch)
      entries;
    if !unfixed > 0 then begin
      Printf.printf
        "bugdb export: %d entr%s still diverge — fix the engines (or rerun \
         the campaign) before promoting\n"
        !unfixed
        (if !unfixed = 1 then "y" else "ies");
      1
    end
    else 0

let bugdb_file_arg =
  Arg.(
    required
    & opt (some file) None
    & info [ "bugdb" ] ~docv:"FILE" ~doc:"Campaign bug store to export from.")

let out_dir_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "out" ] ~docv:"DIR"
        ~doc:"Directory receiving NAME.c/NAME.expected pairs (created).")

let bugdb_cmd =
  let doc = "operations on campaign bug stores" in
  let export_doc =
    "re-verify every stored reproducer and promote it into a regressions \
     corpus"
  in
  Cmd.group (Cmd.info "bugdb" ~doc)
    [
      Cmd.v
        (Cmd.info "export" ~doc:export_doc)
        Term.(const do_bugdb_export $ bugdb_file_arg $ out_dir_arg);
    ]

(* ---------------- bench ---------------- *)

(* The always-on subset of bench/main.exe: time the Fig 15 meteor and
   whetstone units of work under the interpreter and under the
   closure-compiled tier, and append the wall-clock rows (plus the
   per-benchmark interp/tiered speedups) to a JSON-array log so the
   tiered-engine trajectory is tracked across PRs.  Each benchmark
   prepares one state per engine and rewinds it with [Interp.reset]
   between iterations: [pf_tier] survives the reset (the compiled-body
   cache), so the tiered rows time warm execution, not recompilation —
   the same shape as the paper's warmed-up measurements.  The full
   microbenchmark suite stays in bench/main.exe.

   `sulong bench --compare OLD.json NEW.json` diffs two such logs and
   exits nonzero when any ns_per_op row regressed by more than 10%. *)

let bench_time ?(quota_s = 0.5) ?(min_runs = 3) (thunk : unit -> unit) : float =
  thunk ();
  (* warm-up *)
  let t0 = Sys.time () in
  let runs = ref 0 in
  while Sys.time () -. t0 < quota_s || !runs < min_runs do
    thunk ();
    incr runs
  done;
  (Sys.time () -. t0) *. 1e9 /. float_of_int !runs

(* (label, interp ns/op, tiered ns/op) for one benchmark program.  With
   [~profile], each engine gets a guest profiler whose attribution
   accumulates across the timing iterations ([Interp.reset] rewinds the
   delta markers but keeps the books); the top-N tables go to stderr so
   the ns/op lines on stdout stay log-greppable. *)
let bench_pair ~quota_s ?(profile = false) (label : string) (src : string) :
    string * float * float =
  let m = Loader.load_program src in
  let mkprof () = if profile then Some (Profile.create ()) else None in
  let profi = mkprof () in
  let sti = Interp.create ?profile:profi m in
  let interp_ns =
    bench_time ~quota_s (fun () ->
        Interp.reset sti;
        ignore (Interp.run sti))
  in
  let proft = mkprof () in
  let stt =
    Interp.create ~tier:(Tier.controller ~threshold:0 ()) ?profile:proft m
  in
  let tiered_ns =
    bench_time ~quota_s (fun () ->
        Interp.reset stt;
        ignore (Interp.run stt))
  in
  List.iter
    (fun (engine, p) ->
      match p with
      | Some p ->
        Printf.eprintf "%s (%s)\n%s" label engine (Profile.top_table p)
      | None -> ())
    [ ("managed interpreter", profi); ("closure-compiled tier", proft) ];
  (label, interp_ns, tiered_ns)

let do_bench_run quota_s profile json_file =
  let pairs =
    [
      bench_pair ~quota_s ~profile "fig15 meteor"
        Benchprogs.meteor.Benchprogs.b_source;
      bench_pair ~quota_s ~profile "whetstone"
        Benchprogs.whetstone.Benchprogs.b_source;
    ]
  in
  let rows =
    List.concat_map
      (fun (label, interp_ns, tiered_ns) ->
        let speedup = interp_ns /. tiered_ns in
        Printf.printf "%-12s managed interpreter:   %12.0f ns/op\n" label
          interp_ns;
        Printf.printf "%-12s closure-compiled tier: %12.0f ns/op\n" label
          tiered_ns;
        Printf.printf "%-12s interp/tiered speedup: %12.2f x\n" label speedup;
        [
          Printf.sprintf
            "  {\"name\": \"bench: %s (managed interpreter)\", \"ns_per_op\": \
             %.0f}"
            label interp_ns;
          Printf.sprintf
            "  {\"name\": \"bench: %s (closure-compiled tier)\", \
             \"ns_per_op\": %.0f}"
            label tiered_ns;
          Printf.sprintf
            "  {\"name\": \"bench: %s interp/tiered speedup\", \"value\": \
             %.2f}"
            label speedup;
        ])
      pairs
  in
  (match json_file with
  | Some file ->
    List.iter (Difftest.append_row ~file) rows;
    Printf.printf "appended rows to %s\n" file
  | None -> ());
  0

(* --compare: extract the ns_per_op rows of the stable one-object-per-line
   JSON-array schema both bench writers emit.  Not a JSON parser — just
   enough for the schema we own. *)
let parse_ns_rows (file : string) : (string * float) list =
  let ic = open_in file in
  let s = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let field line key =
    let kq = "\"" ^ key ^ "\":" in
    let n = String.length line and m = String.length kq in
    let rec find i =
      if i + m > n then None
      else if String.sub line i m = kq then Some (i + m)
      else find (i + 1)
    in
    find 0
  in
  String.split_on_char '\n' s
  |> List.filter_map (fun line ->
         match (field line "name", field line "ns_per_op") with
         | Some ni, Some vi -> (
           try
             let nstart = String.index_from line ni '"' + 1 in
             let nend = String.index_from line nstart '"' in
             let name = String.sub line nstart (nend - nstart) in
             let vend = ref vi in
             while
               !vend < String.length line
               && (match line.[!vend] with
                  | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' | ' ' -> true
                  | _ -> false)
             do
               incr vend
             done;
             Some (name, float_of_string (String.trim (String.sub line vi (!vend - vi))))
           with _ -> None)
         | _ -> None)

let do_bench_compare old_file new_file =
  let old_rows = parse_ns_rows old_file in
  let new_rows = parse_ns_rows new_file in
  let tolerance = 1.10 in
  let regressions = ref 0 in
  List.iter
    (fun (name, ns_new) ->
      match List.assoc_opt name old_rows with
      | Some ns_old when ns_old > 0.0 ->
        let ratio = ns_new /. ns_old in
        let flag = if ratio > tolerance then "REGRESSION" else "ok" in
        if ratio > tolerance then incr regressions;
        Printf.printf "%-56s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n" name
          ns_old ns_new
          ((ratio -. 1.0) *. 100.0)
          flag
      | _ -> Printf.printf "%-56s %28.0f ns/op  (new row)\n" name ns_new)
    new_rows;
  if !regressions > 0 then begin
    Printf.printf "bench: %d row(s) regressed by more than %.0f%%\n"
      !regressions ((tolerance -. 1.0) *. 100.0);
    1
  end
  else begin
    Printf.printf "bench: no ns_per_op row regressed by more than %.0f%%\n"
      ((tolerance -. 1.0) *. 100.0);
    0
  end

let do_bench quota_s profile json_file compare_files =
  match compare_files with
  | [] -> do_bench_run quota_s profile json_file
  | [ old_file; new_file ] -> do_bench_compare old_file new_file
  | _ ->
    prerr_endline "bench: --compare takes exactly OLD.json NEW.json";
    2

let bench_json_arg =
  Arg.(
    value
    & opt ~vopt:(Some "BENCH_interp.json") (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Append the interp-vs-tiered rows to the JSON-array log $(docv) \
           (default BENCH_interp.json).")

let bench_quota_arg =
  Arg.(
    value & opt float 0.5
    & info [ "quota" ] ~docv:"SECONDS"
        ~doc:
          "Per-row timing quota; lower it (e.g. 0.05) for a smoke run that \
           only checks the tiered engine still executes the benchmarks.")

let bench_compare_arg =
  Arg.(
    value
    & opt_all string []
    & info [ "compare" ] ~docv:"FILE"
        ~doc:
          "Given twice (--compare OLD.json --compare NEW.json), diff the two \
           bench logs instead of timing, and exit nonzero when any \
           ns_per_op row regressed by more than 10%.")

let bench_profile_arg =
  Arg.(
    value & flag
    & info [ "profile" ]
        ~doc:
          "Print each benchmark's guest profile (top functions and hot \
           blocks by managed steps) for both engines to stderr after \
           timing.")

let bench_cmd =
  let doc = "time the interpreter vs. the closure-compiled tier (Fig 15 unit)" in
  Cmd.v (Cmd.info "bench" ~doc)
    Term.(
      const do_bench $ bench_quota_arg $ bench_profile_arg $ bench_json_arg
      $ bench_compare_arg)

(* ---------------- obs-selftest ---------------- *)

(** End-to-end check of the observability subsystem, wired into the
    [@obs] build alias: run a known-buggy program with metrics and
    tracing on, then assert that the provenance report names the right
    source line, the metric registry saw the run, and the emitted trace
    is well-formed Chrome trace_event JSON. *)
let do_obs_selftest () =
  let failures = ref [] in
  let check name cond =
    if not cond then failures := name :: !failures
  in
  Metrics.reset ();
  Metrics.enabled := true;
  Trace.start ();
  let src =
    "int main(void) {\n\
    \  int *p = (int *)malloc(3 * sizeof(int));\n\
    \  long s = 0;\n\
    \  for (int i = 0; i <= 3; i++) s += p[i];\n\
    \  free(p);\n\
    \  return (int)s;\n\
     }\n"
  in
  let r = Loader.run_source ~argv:[ "selftest" ] src in
  check "managed error detected" (r.Interp.error <> None);
  (match r.Interp.report with
  | Some rep ->
    check "report names the faulting line"
      (match Bugreport.fault_frame rep with
      | Some f -> f.Bugreport.bf_line = 4 && f.Bugreport.bf_file = "<input>"
      | None -> false);
    check "report has bounds detail" (rep.Bugreport.br_detail <> []);
    check "report has a stack" (rep.Bugreport.br_stack <> [])
  | None -> check "provenance report present" false);
  let json = Trace.finish () in
  (match Trace.validate json with
  | Ok () -> ()
  | Error e -> check (Printf.sprintf "trace is valid Chrome JSON (%s)" e) false);
  check "trace covers the execute phase"
    (let rec has_sub i =
       i + 9 <= String.length json
       && (String.sub json i 9 = "\"execute\"" || has_sub (i + 1))
     in
     has_sub 0);
  let sn = Metrics.snapshot () in
  check "interp step counter recorded"
    (List.mem_assoc "interp.steps" sn.Metrics.sn_counters);
  check "heap alloc counter recorded"
    (List.mem_assoc "heap.allocs" sn.Metrics.sn_counters);
  check "alloc size histogram recorded"
    (List.exists
       (fun (n, _, _, _) -> n = "heap.alloc_size_bytes")
       sn.Metrics.sn_histograms);
  (* Guest profiler smoke: folded stacks non-empty and the conservation
     law — tree total and folded-line sum both equal the engine's final
     step counter. *)
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let psrc =
    "int add(int a, int b) { return a + b; }\n\
     int main(void) {\n\
    \  int s = 0;\n\
    \  for (int i = 0; i < 50; i++) s = add(s, i);\n\
    \  printf(\"%d\\n\", s);\n\
    \  return 0;\n\
     }\n"
  in
  let prof = Profile.create () in
  let pr = Interp.run (Interp.create ~profile:prof (Loader.load_program psrc)) in
  check "profile: run finished" (pr.Interp.error = None && not pr.Interp.timed_out);
  check "profile: tree total equals step counter"
    (Profile.total_steps prof = pr.Interp.steps);
  let folded = Profile.folded prof in
  check "profile: folded output non-empty" (folded <> "");
  check "profile: folded names the callee" (contains folded "main;add ");
  let folded_sum =
    String.split_on_char '\n' folded
    |> List.fold_left
         (fun acc line ->
           match String.rindex_opt line ' ' with
           | Some i -> (
             match
               int_of_string_opt
                 (String.sub line (i + 1) (String.length line - i - 1))
             with
             | Some n -> acc + n
             | None -> acc)
           | None -> acc)
         0
  in
  check "profile: folded stacks sum to step counter"
    (folded_sum = pr.Interp.steps);
  (* Flight recorder smoke: a forced-hot erroring run records tier-up
     and deopt events, and the bug report embeds the ring. *)
  Events.reset ();
  let bsrc =
    "int main(void) {\n\
    \  int a[3];\n\
    \  for (int i = 0; i <= 3; i++) a[i] = i;\n\
    \  return a[0];\n\
     }\n"
  in
  let br =
    Interp.run
      (Interp.create ~tier:(Tier.controller ~threshold:0 ())
         (Loader.load_program bsrc))
  in
  check "events: managed error detected" (br.Interp.error <> None);
  let ev_lines = Events.to_lines () in
  check "events: ring non-empty" (ev_lines <> []);
  check "events: tier-up recorded"
    (List.exists (fun l -> contains l "tier-up") ev_lines);
  check "events: deopt recorded"
    (List.exists (fun l -> contains l "deopt") ev_lines);
  (match br.Interp.report with
  | Some rep -> check "events: bug report embeds ring" (rep.Bugreport.br_events <> [])
  | None -> check "events: provenance report present" false);
  Metrics.enabled := false;
  match List.rev !failures with
  | [] ->
    print_endline "obs-selftest: OK";
    0
  | fs ->
    List.iter (Printf.eprintf "obs-selftest FAILED: %s\n") fs;
    1

let obs_selftest_cmd =
  let doc = "self-check of metrics, tracing and bug-report provenance" in
  Cmd.v (Cmd.info "obs-selftest" ~doc) Term.(const do_obs_selftest $ const ())

(* ---------------- main ---------------- *)

let () =
  let doc =
    "Safe Sulong reproduction: find C memory errors by abstracting from the \
     native execution model"
  in
  let info = Cmd.info "sulong" ~version:"1.0" ~doc in
  exit (Cmd.eval' (Cmd.group info
       [ run_cmd; ir_cmd; run_ir_cmd; compare_cmd; corpus_cmd; report_cmd;
         difftest_cmd; bugdb_cmd; bench_cmd; obs_selftest_cmd ]))
